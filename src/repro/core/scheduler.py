"""The global Scheduler (paper §III-B).

Receives requests forwarded by the Gateway into the system-wide global
queue, and dispatches them to GPUs according to the configured scheduling
policy, using the GPU status, estimated finish times, and cache LRU lists
maintained by the GPU Managers and Cache Manager.

The Scheduler implements :class:`~repro.core.policies.SchedulerOps`: the
policy objects decide, the Scheduler executes (removing requests from
queues, invoking GPU Managers, shipping the GPU address with the dispatch).

Pass-elision engine
-------------------
Every entry point (``submit`` / ``on_gpu_idle`` / ``resubmit``) used to
run at least one full policy pass.  With elision on (the default,
``SystemConfig(pass_elision=True)``) the Scheduler instead consults the
policy's :class:`~repro.core.signals.PassGuard` before every would-be
pass — the initial pass of an action and every re-invocation after a
productive one — and skips passes the guard proves are no-ops, reacting
to the dirty signals the components publish (idle-set delta, queue
length, idle local work) instead of re-deriving "nothing to do" from
full state.  ``passes_executed`` / ``passes_elided`` count every
considered pass into exactly one of the two bins, so benchmarks can gate
that elision actually engages.  The pre-elision engine survives as
``pass_elision=False`` for the parity suites.
"""

from __future__ import annotations

from time import perf_counter_ns

from ..cluster.gpu import GPUDevice
from ..cluster.topology import Cluster
from ..datastore.client import DatastoreClient
from ..sim import Simulator
from .cache_manager import CacheManager
from .decisions import Decision, DecisionKind, DecisionLog
from .estimator import FinishTimeEstimator
from .gpu_manager import GPUManager
from .policies import SchedulingPolicy
from .queues import GlobalQueue, LocalQueues
from .request import InferenceRequest, RequestState
from .signals import IdleLocalWorkIndex
from .tenancy import TenancyController

__all__ = ["Scheduler"]


class Scheduler:
    """Global scheduler: one per FaaS system."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        policy: SchedulingPolicy,
        cache: CacheManager,
        estimator: FinishTimeEstimator,
        gpu_managers: dict[str, GPUManager],
        *,
        datastore: DatastoreClient | None = None,
        tenancy: TenancyController | None = None,
        pass_elision: bool = True,
        deadline_s: float | None = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.policy = policy
        self.cache = cache
        self.estimator = estimator
        self.local_queues = estimator.local_queues
        # LALB policies carry an O3 limit: hand it to the queue so it can
        # run the lazy visit accounting the index-driven fast path needs;
        # with a tenancy controller installed the queue also maintains the
        # tenant-admissibility index the per-pass fast-path probe consults
        self.global_queue = GlobalQueue(
            o3_limit=getattr(policy, "limit", None),
            track_tenants=tenancy is not None,
        )
        self.datastore = datastore
        self.tenancy = tenancy
        # per-GPU dispatch plumbing, precomputed once and array-backed:
        # each device is stamped with a dense cluster-wide slot, and the
        # "GPU address" (server IP + device name, §III-B) plus the owning
        # manager live in slot-indexed lists — _execute costs two list
        # reads per dispatch instead of hashing the gpu_id string twice
        # (and the historical node_of lookup / string split / tuple mint)
        self._address_by_slot: list[tuple[str, str]] = []
        self._manager_by_slot: list[GPUManager | None] = []
        slot = 0
        for node in cluster.nodes:
            manager = gpu_managers.get(node.node_id)
            for g in node.gpus:
                g._sched_slot = slot
                slot += 1
                self._address_by_slot.append(node.gpu_address(g))
                self._manager_by_slot.append(manager)
        self._scheduling = False
        self._work_exhausted = False
        self.dispatched_count = 0
        #: per-request deadline: a request still waiting in the *global*
        #: queue this many seconds after arrival times out and is dropped.
        #: None (default) schedules no timeout events at all — the
        #: historical zero-overhead behaviour, byte for byte.
        self.deadline_s = deadline_s
        #: requests dropped (deadline timeout or exhausted retry budget)
        self.lost_count = 0
        #: callback(request, reason) fired when a request is dropped; the
        #: runtime wires this to MetricsCollector.on_lost
        self.on_lost = None
        self.decisions = DecisionLog()
        self._record_decision = self.decisions.record  # hot-path bound method
        #: idle ∩ local-work dirty-signal join (see signals.py); consumed
        #: by the pass guards and the mid-pass narrowing probe
        self.idle_local_work = IdleLocalWorkIndex(cluster, self.local_queues)
        self.pass_elision = pass_elision
        #: scheduling actions seen (entry-point invocations)
        self.actions = 0
        #: passes actually run (either engine)
        self.passes_executed = 0
        #: passes proven no-ops by the guard and skipped (elision on only)
        self.passes_elided = 0
        # the mid-pass narrowing probe: bound only when elision is on
        # (None keeps the policies on the full historical walk, and keeps
        # their getattr probe on the cheap found-attribute path)
        self.pass_work_remaining = self._pass_work_remaining if pass_elision else None
        #: flight recorder, installed by the runtime when tracing is on;
        #: None keeps _run_policy on the uninstrumented engines
        self._tracer = None
        #: ExplainLog when SystemConfig(trace_decisions=True); always
        #: defined so the policies' getattr probe stays on the cheap
        #: found-attribute path
        self.explain = None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Accept a request from the Gateway into the global queue."""
        request.state = RequestState.QUEUED
        self.global_queue.push(request)
        if self.deadline_s is not None:
            self.sim.schedule_at(
                request.arrival_time + self.deadline_s, self._deadline_expired, request
            )
        self.actions += 1
        self._run_policy()
        self._flush_writes()

    def on_gpu_idle(self, gpu: GPUDevice) -> None:
        """GPU Manager callback: a GPU finished its request."""
        self.actions += 1
        self._run_policy()
        self._flush_writes()

    def drain_local(self, gpu_id: str) -> list[InferenceRequest]:
        """Empty a GPU's local queue (failure handling): the locality that
        bound these requests here is gone with the GPU's memory."""
        drained = []
        while self.local_queues.peek(gpu_id) is not None:
            drained.append(self.local_queues.pop(gpu_id))
        return drained

    def resubmit(self, request: InferenceRequest) -> None:
        """Return a request to the global queue at its arrival position."""
        request.reset_for_retry()
        self._record(DecisionKind.RESUBMIT, request, None)
        self.global_queue.push_sorted(request)
        self.actions += 1
        self._run_policy()
        self._flush_writes()

    def give_up(self, request: InferenceRequest, reason: str) -> None:
        """Drop a request whose retry budget is exhausted (bounded-retry
        resubmission): it leaves the system as LOST instead of re-queueing
        forever against a fault it cannot outlast."""
        self._record(DecisionKind.LOST, request, None)
        self._lose(request, reason)

    def _deadline_expired(self, request: InferenceRequest) -> None:
        """Per-request deadline timeout event (``deadline_s`` configured).

        Only a request still *waiting in the global queue* can time out:
        once it is bound to a GPU's local queue or dispatched, the work is
        committed and will complete (or be resubmitted by failure
        handling, staying eligible for a later firing only while QUEUED —
        the timeout event fires exactly once, at arrival + deadline).
        """
        if request.state is not RequestState.QUEUED:
            return
        if request not in self.global_queue:
            return
        self.global_queue.remove(request)
        self._record(DecisionKind.TIMEOUT, request, None)
        self._lose(request, "deadline")

    def _lose(self, request: InferenceRequest, reason: str) -> None:
        request.state = RequestState.LOST
        self.lost_count += 1
        if self.on_lost is not None:
            self.on_lost(request, reason)

    def _flush_writes(self) -> None:
        """Commit the scheduling action's accumulated Datastore writes.

        The batched write path accumulates every put this action caused —
        cache touches, status flips, finish-time estimates, latency
        records — in the Datastore's shared WriteBatch; committing here
        turns the whole action into one transaction, one revision, and one
        coalesced watch notification.  Inside a simulator event the flush
        defers to the post-event hook instead, so a handler that calls
        several scheduler entry points (e.g. a failure resubmitting many
        requests) still commits as a single action.  With batching off (or
        no Datastore) this is a no-op, preserving the literal per-put
        behaviour.
        """
        if self.datastore is not None and not self.sim._running:
            self.datastore.flush()

    def _pass_work_remaining(self) -> bool:
        """The narrowing probe policies consult mid-pass (elision on).

        Same provable-no-op predicate the policy's guard applies between
        passes, evaluated from the live dirty signals — so a pass stops
        walking idle GPUs the moment nothing it visits can act.  A False
        answer is remembered (``_work_exhausted``) so the engine can elide
        the post-pass guard re-evaluation: nothing changes between the
        probe and the pass returning.
        """
        if self.policy.guard.may_act(self):
            return True
        self._work_exhausted = True
        return False

    def _run_policy(self) -> None:
        """Run scheduling passes until the policy makes no more progress.

        §IV-A: the scheduler acts when at least one request is waiting
        (global or local) and at least one GPU is idle.  The re-entrancy
        guard matters because dispatching can synchronously change GPU
        state, which policies observe mid-pass.

        With elision on, the policy's :class:`PassGuard` replaces the
        historical run/stop conditions: every would-be pass is either
        executed or — when the guard proves it a no-op — elided and
        counted.  Both engines run the same passes in the same order;
        elision only removes passes that would have decided nothing.
        """
        if self._scheduling:
            return
        if self._tracer is not None or self.explain is not None:
            self._run_policy_observed()
            return
        if self.pass_elision:
            guard_may_act = self.policy.guard.may_act
            if not guard_may_act(self):
                self.passes_elided += 1
                return
            self._scheduling = True
            try:
                while True:
                    self.passes_executed += 1
                    self._work_exhausted = False
                    if not self.policy.schedule_pass(self):
                        break
                    if self._work_exhausted or not guard_may_act(self):
                        self.passes_elided += 1
                        break
            finally:
                self._scheduling = False
            return
        # reference engine: the pre-elision run/stop conditions, verbatim
        if not self.cluster.idle_gpus():
            return
        if len(self.global_queue) == 0 and self.local_queues.total() == 0:
            return
        self._scheduling = True
        try:
            while True:
                self.passes_executed += 1
                if not self.policy.schedule_pass(self):
                    break
                if not self.cluster.idle_gpus():
                    break
                if len(self.global_queue) == 0 and self.local_queues.total() == 0:
                    break
        finally:
            self._scheduling = False

    def _signal_state(self) -> str:
        """The dirty-signal snapshot an armed/elided pass saw (explain
        mode only — builds a string, never called on the default path)."""
        return (
            f"idle={self.cluster.idle_count} "
            f"queued={self.global_queue._live} "
            f"local={self.local_queues.total()} "
            f"idle_local_work={bool(self.idle_local_work)}"
        )

    def _run_policy_observed(self) -> None:
        """:meth:`_run_policy` with the tracer/explain hooks threaded in.

        Runs exactly the passes the uninstrumented engines run, in the
        same order (the observability parity suite asserts byte-identical
        DecisionLogs); adds a wall-clock span per ``span_stride``-th
        executed pass when a tracer is installed (unsampled passes only
        bump the exact counter) and pass/elision context when explain is
        on.
        Kept separate so the default engines above stay literally
        untouched — "zero cost when off" is two identity tests (and the
        runtime rebinds ``_run_policy`` to this method when it installs
        a tracer, so the on path does not even pay the extra dispatch).

        The pass ring is written *in place* rather than through
        ``tracer.pass_span``: one closure call per executed pass is
        measurable at 2k-replay rates, and ``_tracer`` here is always
        the runtime-installed :class:`~repro.obs.FlightRecorder` (the
        lower-rate hooks elsewhere go through the Tracer protocol).
        """
        if self._scheduling:
            return
        tracer = self._tracer
        explain = self.explain
        if self.pass_elision:
            guard_may_act = self.policy.guard.may_act
            if not guard_may_act(self):
                self.passes_elided += 1
                if explain is not None:
                    explain.pass_elided(self.sim._now, self._signal_state())
                return
            if tracer is not None:
                # loop-invariant tracer state, bound once per armed
                # invocation (after the early-outs: most invocations
                # elide, and the elided path should pay nothing extra).
                # decision_log is the underlying deque — len() on it is
                # a C-level size read, where len(self.decisions) would
                # dispatch a Python __len__ twice per sampled pass
                decision_log = self.decisions._log
                p_state = tracer._p_state
                p_stride = tracer.span_stride
            self._scheduling = True
            try:
                while True:
                    self.passes_executed += 1
                    self._work_exhausted = False
                    if explain is not None:
                        explain.pass_begin(self.passes_executed, self._signal_state())
                    if tracer is not None:
                        # count every pass; clock + record only the
                        # stride-sampled ones (the probes are the cost)
                        n = p_state[2] + 1
                        p_state[2] = n
                        if n % p_stride:
                            progressed = self.policy.schedule_pass(self)
                        else:
                            d0 = len(decision_log)
                            t0 = perf_counter_ns()
                            progressed = self.policy.schedule_pass(self)
                            wall = perf_counter_ns() - t0
                            p_buf = tracer._p_buf
                            i = p_state[0]
                            b = i * 3
                            p_buf[b] = self.sim._now
                            p_buf[b + 1] = wall
                            p_buf[b + 2] = len(decision_log) - d0
                            p_state[1] += 1
                            i += 1
                            p_state[0] = 0 if i == tracer.capacity else i
                    else:
                        progressed = self.policy.schedule_pass(self)
                    if not progressed:
                        break
                    if self._work_exhausted or not guard_may_act(self):
                        self.passes_elided += 1
                        if explain is not None:
                            explain.pass_elided(self.sim._now, self._signal_state())
                        break
            finally:
                self._scheduling = False
                if explain is not None:
                    explain.pass_end()
            return
        # mirrored reference engine (pre-elision run/stop conditions)
        if not self.cluster.idle_gpus():
            return
        if len(self.global_queue) == 0 and self.local_queues.total() == 0:
            return
        if tracer is not None:
            decision_log = self.decisions._log
            p_state = tracer._p_state
            p_stride = tracer.span_stride
        self._scheduling = True
        try:
            while True:
                self.passes_executed += 1
                if explain is not None:
                    explain.pass_begin(self.passes_executed, self._signal_state())
                if tracer is not None:
                    n = p_state[2] + 1
                    p_state[2] = n
                    if n % p_stride:
                        progressed = self.policy.schedule_pass(self)
                    else:
                        d0 = len(decision_log)
                        t0 = perf_counter_ns()
                        progressed = self.policy.schedule_pass(self)
                        wall = perf_counter_ns() - t0
                        p_buf = tracer._p_buf
                        i = p_state[0]
                        b = i * 3
                        p_buf[b] = self.sim._now
                        p_buf[b + 1] = wall
                        p_buf[b + 2] = len(decision_log) - d0
                        p_state[1] += 1
                        i += 1
                        p_state[0] = 0 if i == tracer.capacity else i
                else:
                    progressed = self.policy.schedule_pass(self)
                if not progressed:
                    break
                if not self.cluster.idle_gpus():
                    break
                if len(self.global_queue) == 0 and self.local_queues.total() == 0:
                    break
        finally:
            self._scheduling = False
            if explain is not None:
                explain.pass_end()

    # ------------------------------------------------------------------
    # SchedulerOps: observations
    # ------------------------------------------------------------------
    def idle_gpus(self) -> list[GPUDevice]:
        return self.cluster.idle_gpus()

    def idle_gpus_by_frequency(self) -> list[GPUDevice]:
        """Idle GPUs, most-used first (Alg. 1's "sorted by frequency").

        Frequency is the number of requests the GPU has completed; ties
        break on gpu_id for determinism.  Served from the Cluster's
        incrementally maintained view (one remove per dispatch, one
        re-file per completion — no rebuild-and-sort on state changes).
        Callers must not mutate the returned list.
        """
        return self.cluster.idle_gpus_by_frequency()

    def busy_gpus(self) -> list[GPUDevice]:
        return self.cluster.busy_gpus()

    def gpu(self, gpu_id: str) -> GPUDevice:
        return self.cluster.gpu(gpu_id)

    def may_dispatch(self, request: InferenceRequest, gpu: GPUDevice | None = None) -> bool:
        """Tenancy admission check (§VI isolation).

        With a concrete target ``gpu`` the check is exact: dispatching a
        model not cached there starts a new GPU process and counts against
        the tenant's process/memory quota; a cache hit does not.
        """
        if self.tenancy is None:
            return True
        will_load = None
        if gpu is not None:
            will_load = not self.cache.is_cached_on(request.model_id, gpu.gpu_id)
        return self.tenancy.allows(request, will_load=will_load)

    # ------------------------------------------------------------------
    # SchedulerOps: actions
    # ------------------------------------------------------------------
    def dispatch(self, request: InferenceRequest, gpu: GPUDevice) -> None:
        """Remove ``request`` from the global queue and execute it on ``gpu``.

        The dispatch carries the GPU address (server IP + device name) as
        §III-B describes; it is recorded on the request for the logs.
        """
        self.global_queue.remove(request)
        kind = (
            DecisionKind.DISPATCH_HIT
            if self.cache.is_cached_on(request.model_id, gpu.gpu_id)
            else DecisionKind.DISPATCH_MISS
        )
        self._record(kind, request, gpu.gpu_id)
        self._execute(request, gpu)

    def dispatch_local_head(self, gpu: GPUDevice) -> None:
        """Serve the head of ``gpu``'s local queue (Alg. 1 lines 2–5)."""
        request = self.local_queues.pop(gpu.gpu_id)
        self._record(DecisionKind.DISPATCH_LOCAL, request, gpu.gpu_id)
        self._execute(request, gpu)

    def move_to_local(self, request: InferenceRequest, gpu: GPUDevice) -> None:
        """Bind ``request`` to busy ``gpu``'s local queue (Alg. 2 line 12)."""
        if gpu.is_idle:
            raise RuntimeError(
                f"refusing to local-queue on idle {gpu.gpu_id}; dispatch instead"
            )
        self.global_queue.remove(request)
        self._record(DecisionKind.MOVE_TO_LOCAL, request, gpu.gpu_id)
        self.local_queues.push(gpu.gpu_id, request)

    def _record(self, kind: DecisionKind, request: InferenceRequest, gpu_id: str | None) -> None:
        # positional Decision mint + cached bound method + direct _now
        # read: one Decision is recorded per scheduling action
        decision = Decision(
            self.sim._now, kind, request.request_id,
            request.model_id, gpu_id, request.visits,
        )
        self._record_decision(decision)
        explain = self.explain
        if explain is not None:
            explain.attach(decision)

    def _execute(self, request: InferenceRequest, gpu: GPUDevice) -> None:
        # the "GPU address" shipped with the function's container (§III-B);
        # the manager stamps RequestState.DISPATCHED as part of execute()
        slot = gpu._sched_slot
        request.gpu_address = self._address_by_slot[slot]
        self._manager_by_slot[slot].execute(request, gpu)
        self.dispatched_count += 1
