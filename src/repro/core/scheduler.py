"""The global Scheduler (paper §III-B).

Receives requests forwarded by the Gateway into the system-wide global
queue, and dispatches them to GPUs according to the configured scheduling
policy, using the GPU status, estimated finish times, and cache LRU lists
maintained by the GPU Managers and Cache Manager.

The Scheduler implements :class:`~repro.core.policies.SchedulerOps`: the
policy objects decide, the Scheduler executes (removing requests from
queues, invoking GPU Managers, shipping the GPU address with the dispatch).
"""

from __future__ import annotations

from ..cluster.gpu import GPUDevice
from ..cluster.topology import Cluster
from ..datastore.client import DatastoreClient
from ..sim import Simulator
from .cache_manager import CacheManager
from .decisions import Decision, DecisionKind, DecisionLog
from .estimator import FinishTimeEstimator
from .gpu_manager import GPUManager
from .policies import SchedulingPolicy
from .queues import GlobalQueue, LocalQueues
from .request import InferenceRequest, RequestState
from .tenancy import TenancyController

__all__ = ["Scheduler"]


class Scheduler:
    """Global scheduler: one per FaaS system."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        policy: SchedulingPolicy,
        cache: CacheManager,
        estimator: FinishTimeEstimator,
        gpu_managers: dict[str, GPUManager],
        *,
        datastore: DatastoreClient | None = None,
        tenancy: TenancyController | None = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.policy = policy
        self.cache = cache
        self.estimator = estimator
        self.local_queues = estimator.local_queues
        # LALB policies carry an O3 limit: hand it to the queue so it can
        # run the lazy visit accounting the index-driven fast path needs;
        # with a tenancy controller installed the queue also maintains the
        # tenant-admissibility index the per-pass fast-path probe consults
        self.global_queue = GlobalQueue(
            o3_limit=getattr(policy, "limit", None),
            track_tenants=tenancy is not None,
        )
        self.datastore = datastore
        self.tenancy = tenancy
        self._managers = gpu_managers  # node_id -> GPUManager
        self._scheduling = False
        self.dispatched_count = 0
        self.decisions = DecisionLog()
        # cached frequency-sorted idle view (rebuilt when any GPU's state
        # or completion count changes; see Cluster.version)
        self._freq_version = -1
        self._freq_cache: list[GPUDevice] = []

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Accept a request from the Gateway into the global queue."""
        request.state = RequestState.QUEUED
        self.global_queue.push(request)
        self._run_policy()
        self._flush_writes()

    def on_gpu_idle(self, gpu: GPUDevice) -> None:
        """GPU Manager callback: a GPU finished its request."""
        self._run_policy()
        self._flush_writes()

    def drain_local(self, gpu_id: str) -> list[InferenceRequest]:
        """Empty a GPU's local queue (failure handling): the locality that
        bound these requests here is gone with the GPU's memory."""
        drained = []
        while self.local_queues.peek(gpu_id) is not None:
            drained.append(self.local_queues.pop(gpu_id))
        return drained

    def resubmit(self, request: InferenceRequest) -> None:
        """Return a request to the global queue at its arrival position."""
        request.reset_for_retry()
        self._record(DecisionKind.RESUBMIT, request, None)
        self.global_queue.push_sorted(request)
        self._run_policy()
        self._flush_writes()

    def _flush_writes(self) -> None:
        """Commit the scheduling action's accumulated Datastore writes.

        The batched write path accumulates every put this action caused —
        cache touches, status flips, finish-time estimates, latency
        records — in the Datastore's shared WriteBatch; committing here
        turns the whole action into one transaction, one revision, and one
        coalesced watch notification.  Inside a simulator event the flush
        defers to the post-event hook instead, so a handler that calls
        several scheduler entry points (e.g. a failure resubmitting many
        requests) still commits as a single action.  With batching off (or
        no Datastore) this is a no-op, preserving the literal per-put
        behaviour.
        """
        if self.datastore is not None and not self.sim.is_running:
            self.datastore.flush()

    def _run_policy(self) -> None:
        """Run scheduling passes until the policy makes no more progress.

        §IV-A: the scheduler acts when at least one request is waiting
        (global or local) and at least one GPU is idle.  The re-entrancy
        guard matters because dispatching can synchronously change GPU
        state, which policies observe mid-pass.
        """
        if self._scheduling:
            return
        if not self.cluster.idle_gpus():
            return
        if len(self.global_queue) == 0 and self.local_queues.total() == 0:
            return
        self._scheduling = True
        try:
            while self.policy.schedule_pass(self):
                if not self.cluster.idle_gpus():
                    break
                if len(self.global_queue) == 0 and self.local_queues.total() == 0:
                    break
        finally:
            self._scheduling = False

    # ------------------------------------------------------------------
    # SchedulerOps: observations
    # ------------------------------------------------------------------
    def idle_gpus(self) -> list[GPUDevice]:
        return self.cluster.idle_gpus()

    def idle_gpus_by_frequency(self) -> list[GPUDevice]:
        """Idle GPUs, most-used first (Alg. 1's "sorted by frequency").

        Frequency is the number of requests the GPU has completed; ties
        break on gpu_id for determinism.  The sorted view is cached and
        only rebuilt when some GPU's state or completion count changed, so
        repeated calls within a pass — and the no-idle-GPU hot case — cost
        O(1) instead of a scan-and-sort.  Callers must not mutate the
        returned list.
        """
        version = self.cluster.version
        if version != self._freq_version:
            idle = self.cluster.idle_gpus()
            if len(idle) > 1:
                idle = sorted(idle, key=lambda g: (-g.completed_requests, g.gpu_id))
            self._freq_cache = idle
            self._freq_version = version
        return self._freq_cache

    def busy_gpus(self) -> list[GPUDevice]:
        return self.cluster.busy_gpus()

    def gpu(self, gpu_id: str) -> GPUDevice:
        return self.cluster.gpu(gpu_id)

    def may_dispatch(self, request: InferenceRequest, gpu: GPUDevice | None = None) -> bool:
        """Tenancy admission check (§VI isolation).

        With a concrete target ``gpu`` the check is exact: dispatching a
        model not cached there starts a new GPU process and counts against
        the tenant's process/memory quota; a cache hit does not.
        """
        if self.tenancy is None:
            return True
        will_load = None
        if gpu is not None:
            will_load = not self.cache.is_cached_on(request.model_id, gpu.gpu_id)
        return self.tenancy.allows(request, will_load=will_load)

    # ------------------------------------------------------------------
    # SchedulerOps: actions
    # ------------------------------------------------------------------
    def dispatch(self, request: InferenceRequest, gpu: GPUDevice) -> None:
        """Remove ``request`` from the global queue and execute it on ``gpu``.

        The dispatch carries the GPU address (server IP + device name) as
        §III-B describes; it is recorded on the request for the logs.
        """
        self.global_queue.remove(request)
        kind = (
            DecisionKind.DISPATCH_HIT
            if self.cache.is_cached_on(request.model_id, gpu.gpu_id)
            else DecisionKind.DISPATCH_MISS
        )
        self._record(kind, request, gpu.gpu_id)
        self._execute(request, gpu)

    def dispatch_local_head(self, gpu: GPUDevice) -> None:
        """Serve the head of ``gpu``'s local queue (Alg. 1 lines 2–5)."""
        request = self.local_queues.pop(gpu.gpu_id)
        self._record(DecisionKind.DISPATCH_LOCAL, request, gpu.gpu_id)
        self._execute(request, gpu)

    def move_to_local(self, request: InferenceRequest, gpu: GPUDevice) -> None:
        """Bind ``request`` to busy ``gpu``'s local queue (Alg. 2 line 12)."""
        if gpu.is_idle:
            raise RuntimeError(
                f"refusing to local-queue on idle {gpu.gpu_id}; dispatch instead"
            )
        self.global_queue.remove(request)
        self._record(DecisionKind.MOVE_TO_LOCAL, request, gpu.gpu_id)
        self.local_queues.push(gpu.gpu_id, request)

    def _record(self, kind: DecisionKind, request: InferenceRequest, gpu_id: str | None) -> None:
        self.decisions.record(
            Decision(
                time_s=self.sim.now,
                kind=kind,
                request_id=request.request_id,
                model_id=request.model_id,
                gpu_id=gpu_id,
                visits=request.visits,
            )
        )

    def _execute(self, request: InferenceRequest, gpu: GPUDevice) -> None:
        node = self.cluster.node_of(gpu.gpu_id)
        ip, device = node.gpu_address(gpu)
        request.state = RequestState.DISPATCHED
        # the "GPU address" shipped with the function's container (§III-B)
        request.gpu_address = (ip, device)
        self._managers[node.node_id].execute(request, gpu)
        self.dispatched_count += 1
