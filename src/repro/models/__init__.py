"""ML model substrate: Table I zoo, profiles, NumPy inference engine, profiler."""

from .persistence import load_registry, save_registry
from .profiler import ProfileRegistry, WallClockProfile, profile_network
from .profiles import PAPER_BATCH_SIZE, BatchRegression, ModelInstance, ModelProfile
from .zoo import TABLE1, TABLE1_ROWS, get_profile, model_names, paper_profiles

__all__ = [
    "load_registry",
    "save_registry",
    "ProfileRegistry",
    "WallClockProfile",
    "profile_network",
    "PAPER_BATCH_SIZE",
    "BatchRegression",
    "ModelInstance",
    "ModelProfile",
    "TABLE1",
    "TABLE1_ROWS",
    "get_profile",
    "model_names",
    "paper_profiles",
]
