"""Profiling procedure (paper §IV-A and §VI "Heterogeneity of GPUs").

"The latencies of uploading the model and running the inference are
collected by profiling each unique model on the GPUs in the system."  Two
profiling paths are provided:

* :func:`profile_network` — wall-clock profiling of a real (NumPy) network:
  time forward passes across batch sizes, fit the linear regression, and
  derive the load time from the model's memory footprint and a PCIe model.
* :class:`ProfileRegistry` — the registry the Scheduler and GPU Managers
  consult: ``(architecture, gpu_type) → ModelProfile``.  For heterogeneous
  clusters it derives per-type profiles from the baseline type using the
  type's speed/load factors, i.e. re-running the §IV-A procedure per type.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..cluster.pcie import PCIeModel
from ..cluster.topology import GPUTypeSpec
from .nn.network import Network
from .profiles import BatchRegression, ModelProfile
from .zoo import paper_profiles

__all__ = ["profile_network", "ProfileRegistry", "WallClockProfile"]


@dataclass(frozen=True)
class WallClockProfile:
    """Raw wall-clock measurements from :func:`profile_network`."""

    profile: ModelProfile
    batch_sizes: tuple[int, ...]
    measured_s: tuple[float, ...]


def profile_network(
    network: Network,
    *,
    input_shape: tuple[int, int, int] = (3, 32, 32),
    batch_sizes: tuple[int, ...] = (1, 4, 8, 16, 32),
    repeats: int = 2,
    pcie: PCIeModel | None = None,
    gpu_type: str = "cpu-numpy",
    seed: int = 0,
) -> WallClockProfile:
    """Measure a real network's inference latency and fit its profile.

    This is the §IV-A procedure executed for real: run the model at several
    batch sizes, keep the best-of-``repeats`` time per batch (standard
    benchmarking practice — the minimum is the least noisy estimator), and
    fit the linear regression.  The load time comes from the model's memory
    footprint through the PCIe model.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if len(batch_sizes) < 2:
        raise ValueError("need at least two batch sizes for the regression")
    pcie = pcie or PCIeModel()
    rng = np.random.default_rng(seed)
    c, h, w = input_shape
    timings = []
    for b in sorted(batch_sizes):
        x = rng.standard_normal((b, c, h, w))
        network.forward(x[:1])  # warm-up: first call pays allocation costs
        best = min(_time_once(network, x) for _ in range(repeats))
        timings.append(best)
    sizes = tuple(sorted(batch_sizes))
    regression = BatchRegression.fit(list(sizes), timings)
    occupied = max(network.memory_mb(), 1e-3)
    profile = ModelProfile(
        name=network.name,
        occupied_mb=occupied,
        load_time_s=pcie.transfer_time(occupied),
        regression=regression,
        gpu_type=gpu_type,
    )
    return WallClockProfile(profile=profile, batch_sizes=sizes, measured_s=tuple(timings))


def _time_once(network: Network, x: np.ndarray) -> float:
    t0 = time.perf_counter()
    network.forward(x)
    return time.perf_counter() - t0


class ProfileRegistry:
    """Per-GPU-type model profiles used for finish-time estimation.

    The registry answers the only two questions the schedulers ask:
    "how long to load model m on GPU g?" and "how long to run a batch of
    model m on GPU g?".
    """

    def __init__(self) -> None:
        self._profiles: dict[tuple[str, str], ModelProfile] = {}

    def add(self, profile: ModelProfile) -> None:
        self._profiles[(profile.name, profile.gpu_type)] = profile

    def get(self, architecture: str, gpu_type: str) -> ModelProfile:
        try:
            return self._profiles[(architecture, gpu_type)]
        except KeyError:
            raise KeyError(
                f"no profile for {architecture!r} on GPU type {gpu_type!r}; "
                "run the profiling procedure for every unique GPU type (§VI)"
            ) from None

    def architectures(self) -> set[str]:
        return {a for a, _ in self._profiles}

    def gpu_types(self) -> set[str]:
        return {t for _, t in self._profiles}

    def __len__(self) -> int:
        return len(self._profiles)

    @staticmethod
    def from_table1(
        gpu_types: list[GPUTypeSpec] | None = None, *, baseline: str = "rtx2080"
    ) -> "ProfileRegistry":
        """Registry seeded with Table I, extended to each extra GPU type.

        For a type with ``speed_factor`` s, inference scales by s and
        loading scales by the ratio of PCIe transfer times, matching §VI:
        the same profiling procedure re-run per type.
        """
        reg = ProfileRegistry()
        base = paper_profiles(gpu_type=baseline)
        for p in base.values():
            reg.add(p)
        base_pcie = PCIeModel()
        for spec in gpu_types or []:
            if spec.name == baseline:
                continue
            for p in base.values():
                load_factor = spec.pcie.transfer_time(p.occupied_mb) / base_pcie.transfer_time(
                    p.occupied_mb
                )
                reg.add(p.on_gpu_type(spec.name, spec.speed_factor, load_factor))
        return reg
