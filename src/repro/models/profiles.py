"""Model performance profiles.

The Scheduler's finish-time estimates (§IV-A) rest on per-model profiles:

* **loading time** — depends only on the model size (PCIe transfer),
* **inference time** — depends on the model and the batch size, "which can
  be profiled using simple regression methods".

A :class:`ModelProfile` stores the profiled values for one model
architecture on one GPU type and exposes the linear batch-size regression
the paper describes.  :class:`ModelInstance` is the *cache item*: a deployed
function's private copy of a model (DESIGN.md §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ModelProfile", "ModelInstance", "BatchRegression", "PAPER_BATCH_SIZE"]

#: The paper runs every inference with a fixed batch size of 32 (§V-A.1).
PAPER_BATCH_SIZE = 32


@dataclass(frozen=True)
class BatchRegression:
    """Linear inference-time model ``t(batch) = intercept + slope * batch``.

    A GPU executes small batches at nearly constant cost (kernel launch and
    memory traffic dominate) and large batches linearly, so an affine fit is
    the "simple regression" of §IV-A.
    """

    intercept: float
    slope: float

    def __post_init__(self) -> None:
        if self.intercept < 0 or self.slope < 0:
            raise ValueError("regression coefficients must be non-negative")
        if self.intercept == 0 and self.slope == 0:
            raise ValueError("degenerate regression (always zero)")

    def time_for(self, batch_size: int) -> float:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return self.intercept + self.slope * batch_size

    @staticmethod
    def fit(batch_sizes: list[int], times_s: list[float]) -> "BatchRegression":
        """Least-squares fit over profiled (batch, latency) samples."""
        x = np.asarray(batch_sizes, dtype=float)
        y = np.asarray(times_s, dtype=float)
        if x.size != y.size or x.size < 2:
            raise ValueError("need at least two profiled batch sizes")
        slope, intercept = np.polyfit(x, y, 1)
        return BatchRegression(intercept=float(max(intercept, 0.0)), slope=float(max(slope, 0.0)))

    @staticmethod
    def from_anchor(
        time_at_anchor: float, anchor_batch: int = PAPER_BATCH_SIZE, fixed_fraction: float = 0.6
    ) -> "BatchRegression":
        """Build a regression from a single profiled point.

        Table I publishes only the batch-32 latency; we split it into a
        fixed part (``fixed_fraction``, kernel-launch/overhead dominated)
        and a batch-proportional part.  The split only matters for
        non-default batch sizes; at the anchor the regression reproduces the
        published number exactly.
        """
        if not 0.0 <= fixed_fraction <= 1.0:
            raise ValueError("fixed_fraction must be in [0, 1]")
        if time_at_anchor <= 0:
            raise ValueError("anchor time must be positive")
        intercept = time_at_anchor * fixed_fraction
        slope = time_at_anchor * (1.0 - fixed_fraction) / anchor_batch
        return BatchRegression(intercept=intercept, slope=slope)


@dataclass(frozen=True)
class ModelProfile:
    """Profiled characteristics of one model architecture on one GPU type.

    Attributes
    ----------
    name:
        Architecture name (Table I row, e.g. ``"resnet50"``).
    occupied_mb:
        GPU-memory occupation while serving with the fixed batch size of 32
        — weights *plus* activation head-room.  The Cache Manager uses this
        for replacement decisions "as the GPU would result in OOM if it
        exceeds the available memory" (§V-A.1).
    load_time_s:
        Host→GPU upload latency (process start + PCIe transfer).
    regression:
        Batch-size → inference-latency model.
    gpu_type:
        GPU the numbers were profiled on (§VI heterogeneity).
    """

    name: str
    occupied_mb: float
    load_time_s: float
    regression: BatchRegression
    gpu_type: str = "rtx2080"

    def __post_init__(self) -> None:
        if self.occupied_mb <= 0:
            raise ValueError("occupied_mb must be positive")
        if self.load_time_s <= 0:
            raise ValueError("load_time_s must be positive")

    @property
    def infer_time_s(self) -> float:
        """Inference latency at the paper's fixed batch size (32)."""
        return self.regression.time_for(PAPER_BATCH_SIZE)

    def infer_time(self, batch_size: int = PAPER_BATCH_SIZE) -> float:
        return self.regression.time_for(batch_size)

    def on_gpu_type(self, gpu_type: str, speed_factor: float, load_factor: float = 1.0) -> "ModelProfile":
        """Derive the profile for a different GPU type (§VI).

        ``speed_factor`` scales inference (SM-bound), ``load_factor`` scales
        loading (PCIe-bound); both <1 means faster.
        """
        if speed_factor <= 0 or load_factor <= 0:
            raise ValueError("factors must be positive")
        reg = BatchRegression(
            intercept=self.regression.intercept * speed_factor,
            slope=self.regression.slope * speed_factor,
        )
        return ModelProfile(
            name=self.name,
            occupied_mb=self.occupied_mb,
            load_time_s=self.load_time_s * load_factor,
            regression=reg,
            gpu_type=gpu_type,
        )


@dataclass(frozen=True)
class ModelInstance:
    """A deployed function's private model copy — the unit of caching.

    Two functions that share an architecture still have distinct instances
    (their own fine-tuned weights), so the cache working set equals the
    number of unique *functions*, matching §V-A.1's working-set sizes of
    15/25/35 against a 22-row model table.
    """

    instance_id: str
    profile: ModelProfile
    tenant: str = "default"
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def occupied_mb(self) -> float:
        return self.profile.occupied_mb

    @property
    def architecture(self) -> str:
        return self.profile.name
