"""Profile persistence: save/load a :class:`ProfileRegistry` as JSON.

§IV-A's profiling is run once per (model, GPU type) and reused; this
module is the "reuse" half — a deployment profiles its models, writes the
registry next to its config, and every scheduler restart loads it back.
"""

from __future__ import annotations

import json
from pathlib import Path

from .profiler import ProfileRegistry
from .profiles import BatchRegression, ModelProfile

__all__ = ["save_registry", "load_registry"]

_FORMAT_VERSION = 1


def save_registry(path: str | Path, registry: ProfileRegistry) -> None:
    """Serialize every profile in the registry to a JSON file."""
    if len(registry) == 0:
        raise ValueError("refusing to save an empty registry")
    profiles = []
    for arch in sorted(registry.architectures()):
        for gpu_type in sorted(registry.gpu_types()):
            try:
                p = registry.get(arch, gpu_type)
            except KeyError:
                continue  # not every (arch, type) pair must exist
            profiles.append(
                {
                    "name": p.name,
                    "gpu_type": p.gpu_type,
                    "occupied_mb": p.occupied_mb,
                    "load_time_s": p.load_time_s,
                    "regression": {
                        "intercept": p.regression.intercept,
                        "slope": p.regression.slope,
                    },
                }
            )
    payload = {"format_version": _FORMAT_VERSION, "profiles": profiles}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_registry(path: str | Path) -> ProfileRegistry:
    """Load a registry saved by :func:`save_registry`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a profile registry file ({exc})") from None
    if not isinstance(payload, dict) or payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported registry format")
    registry = ProfileRegistry()
    for entry in payload.get("profiles", []):
        try:
            profile = ModelProfile(
                name=entry["name"],
                occupied_mb=float(entry["occupied_mb"]),
                load_time_s=float(entry["load_time_s"]),
                regression=BatchRegression(
                    intercept=float(entry["regression"]["intercept"]),
                    slope=float(entry["regression"]["slope"]),
                ),
                gpu_type=entry["gpu_type"],
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"{path}: malformed profile entry {entry!r} ({exc})") from None
        registry.add(profile)
    if len(registry) == 0:
        raise ValueError(f"{path}: registry file contains no profiles")
    return registry
