"""The model zoo: the 22 CNN models of Table I.

Every number below is transcribed from the paper's Table I: occupation size
in GPU memory, loading time, and inference latency for a batch size of 32
on a GeForce RTX 2080.  These profiles drive both the simulator and the
schedulers' finish-time estimates.
"""

from __future__ import annotations

from .profiles import BatchRegression, ModelProfile

__all__ = ["TABLE1_ROWS", "TABLE1", "paper_profiles", "get_profile", "model_names"]

#: (name, occupation size MB, loading time s, inference time s @ batch 32)
TABLE1_ROWS: tuple[tuple[str, float, float, float], ...] = (
    ("squeezenet1.1", 1269, 2.41, 1.28),
    ("resnet18", 1313, 2.52, 1.25),
    ("resnet34", 1357, 2.60, 1.25),
    ("squeezenet1.0", 1435, 2.32, 1.33),
    ("alexnet", 1437, 2.81, 1.25),
    ("resnext50.32x4d", 1555, 2.64, 1.29),
    ("densenet121", 1601, 2.49, 1.28),
    ("densenet169", 1631, 2.56, 1.30),
    ("densenet201", 1665, 2.67, 1.40),
    ("resnet50", 1701, 2.67, 1.28),
    ("resnet101", 1757, 2.95, 1.30),
    ("resnet152", 1827, 3.10, 1.31),
    ("densenet161", 1919, 2.75, 1.32),
    ("inception.v3", 2157, 4.42, 1.63),
    ("resnext101.32x8d", 2191, 3.51, 1.33),
    ("vgg11", 2903, 3.94, 1.29),
    ("wideresnet502", 3611, 3.16, 1.31),
    ("wideresnet1012", 3831, 3.91, 1.32),
    ("vgg13", 3887, 3.98, 1.30),
    ("vgg16", 3907, 4.04, 1.27),
    ("vgg16.bn", 3907, 4.03, 1.26),
    ("vgg19", 3947, 4.07, 1.33),
)

#: Table I keyed by model name.
TABLE1: dict[str, tuple[float, float, float]] = {
    name: (size, load, infer) for name, size, load, infer in TABLE1_ROWS
}


def paper_profiles(gpu_type: str = "rtx2080") -> dict[str, ModelProfile]:
    """All 22 Table I profiles, sorted by occupation size (as in the paper)."""
    return {
        name: ModelProfile(
            name=name,
            occupied_mb=float(size),
            load_time_s=float(load),
            regression=BatchRegression.from_anchor(float(infer)),
            gpu_type=gpu_type,
        )
        for name, size, load, infer in TABLE1_ROWS
    }


def get_profile(name: str, gpu_type: str = "rtx2080") -> ModelProfile:
    """Profile for one Table I model."""
    if name not in TABLE1:
        raise KeyError(f"{name!r} is not in Table I; known: {sorted(TABLE1)}")
    size, load, infer = TABLE1[name]
    return ModelProfile(
        name=name,
        occupied_mb=float(size),
        load_time_s=float(load),
        regression=BatchRegression.from_anchor(float(infer)),
        gpu_type=gpu_type,
    )


def model_names() -> list[str]:
    """Table I model names in occupation-size order."""
    return [name for name, *_ in TABLE1_ROWS]
