"""NumPy CNN inference engine (forward pass only)."""

from .blocks import AvgPool2D, Dropout, ResidualBlock
from .factory import FAMILY_SPECS, available_architectures, build_model, build_residual_model
from .layers import (
    BatchNorm2D,
    Conv2D,
    Flatten,
    GlobalAvgPool,
    Layer,
    Linear,
    MaxPool2D,
    ReLU,
    Softmax,
    im2col,
)
from .network import Network

__all__ = [
    "AvgPool2D",
    "Dropout",
    "ResidualBlock",
    "FAMILY_SPECS",
    "available_architectures",
    "build_model",
    "build_residual_model",
    "BatchNorm2D",
    "Conv2D",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "Linear",
    "MaxPool2D",
    "ReLU",
    "Softmax",
    "im2col",
    "Network",
]
