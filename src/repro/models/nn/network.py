"""Sequential inference networks built from the NumPy layers."""

from __future__ import annotations

import numpy as np

from .layers import Layer, Softmax

__all__ = ["Network"]

_BYTES_PER_PARAM = 4  # float32 weights, as served in production


class Network:
    """An ordered stack of layers with a classification head.

    The network is the payload a GPU process hosts: ``forward`` is the
    paper's ``model(input)`` call, and :meth:`memory_mb` feeds the profiler
    when Table I numbers are not used.
    """

    def __init__(self, name: str, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.name = name
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full forward pass and return class probabilities."""
        for layer in self.layers:
            x = layer(x)
        if not isinstance(self.layers[-1], Softmax):
            x = Softmax()(x)
        return x

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class labels (argmax of probabilities) for a batch."""
        return self.forward(x).argmax(axis=-1)

    @property
    def num_parameters(self) -> int:
        return sum(layer.num_parameters for layer in self.layers)

    def memory_mb(self, activation_headroom: float = 2.5) -> float:
        """Estimated GPU occupation: weights + activation head-room.

        ``activation_headroom`` multiplies the raw weight bytes to account
        for activations, workspace, and allocator slack at batch size 32 —
        the same quantity Table I's "occupation size" measures.
        """
        if activation_headroom < 1.0:
            raise ValueError("head-room multiplier must be >= 1")
        return self.num_parameters * _BYTES_PER_PARAM * activation_headroom / 1e6

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Network {self.name}: {len(self.layers)} layers, {self.num_parameters} params>"
