"""NumPy inference layers (forward pass only).

This is the stand-in for the PyTorch runtime the paper's GPU processes run:
a small, fully vectorized CNN inference engine.  Convolution is implemented
with im2col + a single GEMM — the same structure GPU libraries use, and the
idiomatic way to make NumPy convolution fast (one big matmul instead of
Python loops).

Only inference is implemented (the paper targets inference functions, not
training: §II-C).  All layers take float32/float64 arrays shaped
``(N, C, H, W)`` for spatial layers and ``(N, F)`` for dense layers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Layer",
    "Conv2D",
    "ReLU",
    "MaxPool2D",
    "GlobalAvgPool",
    "BatchNorm2D",
    "Flatten",
    "Linear",
    "Softmax",
    "im2col",
]


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange sliding windows into columns.

    Input ``(N, C, H, W)`` → output ``(N, C*kh*kw, out_h*out_w)``.  Uses
    stride tricks (a view, no copy) followed by one reshape, per the
    vectorize-don't-loop guidance for numerical Python.
    """
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        h, w = h + 2 * padding, w + 2 * padding
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(f"kernel {kh}x{kw} does not fit input {h}x{w}")
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, C, out_h, out_w, kh, kw) -> (N, C*kh*kw, out_h*out_w)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols)


class Layer:
    """Base class: a pure function of its input."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    @property
    def num_parameters(self) -> int:
        return 0


class Conv2D(Layer):
    """2-D convolution (cross-correlation, like torch.nn.Conv2d)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) < 1 or padding < 0:
            raise ValueError("invalid Conv2D hyper-parameters")
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)  # He init: sensible magnitudes for ReLU nets
        self.weight = rng.normal(0.0, scale, (out_channels, in_channels, kernel_size, kernel_size))
        self.bias = np.zeros(out_channels)
        self.stride = stride
        self.padding = padding

    def forward(self, x: np.ndarray) -> np.ndarray:
        oc, ic, kh, kw = self.weight.shape
        if x.ndim != 4 or x.shape[1] != ic:
            raise ValueError(f"expected (N,{ic},H,W), got {x.shape}")
        cols = im2col(x, kh, kw, self.stride, self.padding)
        n = x.shape[0]
        out_h = (x.shape[2] + 2 * self.padding - kh) // self.stride + 1
        out_w = (x.shape[3] + 2 * self.padding - kw) // self.stride + 1
        w2d = self.weight.reshape(oc, ic * kh * kw)
        out = w2d @ cols  # (N, oc, out_h*out_w) via broadcasting over N
        out += self.bias[:, None]
        return out.reshape(n, oc, out_h, out_w)

    @property
    def num_parameters(self) -> int:
        return self.weight.size + self.bias.size


class ReLU(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)


class MaxPool2D(Layer):
    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"pool {k} does not fit input {h}x{w}")
        sn, sc, sh, sw = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, k, k),
            strides=(sn, sc, sh * s, sw * s, sh, sw),
            writeable=False,
        )
        return windows.max(axis=(4, 5))


class GlobalAvgPool(Layer):
    """Average over all spatial positions: (N, C, H, W) → (N, C)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.mean(axis=(2, 3))


class BatchNorm2D(Layer):
    """Inference-mode batch norm: a fixed affine transform per channel."""

    def __init__(self, num_channels: int, eps: float = 1e-5) -> None:
        self.gamma = np.ones(num_channels)
        self.beta = np.zeros(num_channels)
        self.running_mean = np.zeros(num_channels)
        self.running_var = np.ones(num_channels)
        self.eps = eps

    def forward(self, x: np.ndarray) -> np.ndarray:
        scale = self.gamma / np.sqrt(self.running_var + self.eps)
        shift = self.beta - self.running_mean * scale
        return x * scale[:, None, None] + shift[:, None, None]

    @property
    def num_parameters(self) -> int:
        return self.gamma.size + self.beta.size


class Flatten(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class Linear(Layer):
    def __init__(
        self, in_features: int, out_features: int, *, rng: np.random.Generator | None = None
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("invalid Linear dimensions")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, (out_features, in_features))
        self.bias = np.zeros(out_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[1]:
            raise ValueError(f"expected (N,{self.weight.shape[1]}), got {x.shape}")
        return x @ self.weight.T + self.bias

    @property
    def num_parameters(self) -> int:
        return self.weight.size + self.bias.size


class Softmax(Layer):
    """Numerically stable softmax over the last axis."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        z = x - x.max(axis=-1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=-1, keepdims=True)
