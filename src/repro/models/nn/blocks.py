"""Composite building blocks: residual units (ResNet/WideResNet families).

The sequential :class:`~repro.models.nn.network.Network` can host these
directly — a block is itself a :class:`~repro.models.nn.layers.Layer` whose
forward runs an internal branch plus a skip connection, mirroring how
`torchvision`'s ResNet family composes ``BasicBlock``s.
"""

from __future__ import annotations

import numpy as np

from .layers import BatchNorm2D, Conv2D, Layer, ReLU

__all__ = ["ResidualBlock", "Dropout", "AvgPool2D"]


class ResidualBlock(Layer):
    """A basic two-convolution residual unit: ``relu(F(x) + proj(x))``.

    ``F`` is conv3x3 → BN → ReLU → conv3x3 → BN.  When the channel count or
    stride changes, the skip path applies a 1×1 projection convolution
    (the standard downsample shortcut); otherwise it is the identity.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        *,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2D(in_channels, out_channels, 3, stride=stride, padding=1, rng=rng)
        self.bn1 = BatchNorm2D(out_channels)
        self.relu = ReLU()
        self.conv2 = Conv2D(out_channels, out_channels, 3, padding=1, rng=rng)
        self.bn2 = BatchNorm2D(out_channels)
        self.projection: Conv2D | None = None
        if in_channels != out_channels or stride != 1:
            self.projection = Conv2D(in_channels, out_channels, 1, stride=stride, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        branch = self.bn2(self.conv2(self.relu(self.bn1(self.conv1(x)))))
        skip = self.projection(x) if self.projection is not None else x
        return self.relu(branch + skip)

    @property
    def num_parameters(self) -> int:
        total = (
            self.conv1.num_parameters
            + self.bn1.num_parameters
            + self.conv2.num_parameters
            + self.bn2.num_parameters
        )
        if self.projection is not None:
            total += self.projection.num_parameters
        return total


class Dropout(Layer):
    """Inference-mode dropout: the identity (weights already rescaled)."""

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = p

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x


class AvgPool2D(Layer):
    """Average pooling over k×k windows."""

    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (h - k) // s + 1
        out_w = (w - k) // s + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"pool {k} does not fit input {h}x{w}")
        sn, sc, sh, sw = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, k, k),
            strides=(sn, sc, sh * s, sw * s, sh, sw),
            writeable=False,
        )
        return windows.mean(axis=(4, 5))
