"""Builders for miniature versions of the Table I architectures.

The paper's workload uses 22 torchvision CNNs.  We cannot ship torchvision,
so each Table I name maps to a miniature sequential CNN whose *relative*
depth/width mirrors the family (squeezenet light → vgg19 heavy).  The nets
actually run — examples classify synthetic images with them, and the
wall-clock profiler measures their real forward-pass latencies.
"""

from __future__ import annotations

import numpy as np

from .layers import (
    BatchNorm2D,
    Conv2D,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2D,
    ReLU,
)
from .network import Network

__all__ = [
    "build_model",
    "build_residual_model",
    "FAMILY_SPECS",
    "available_architectures",
]

#: (base_width, num_blocks, use_batchnorm) per Table I architecture.  Width
#: and depth grow with the family's real size so relative compute ranks the
#: same way the real models do.
FAMILY_SPECS: dict[str, tuple[int, int, bool]] = {
    "squeezenet1.1": (8, 2, False),
    "resnet18": (8, 3, True),
    "resnet34": (10, 3, True),
    "squeezenet1.0": (10, 2, False),
    "alexnet": (12, 2, False),
    "resnext50.32x4d": (12, 3, True),
    "densenet121": (12, 4, True),
    "densenet169": (14, 4, True),
    "densenet201": (14, 5, True),
    "resnet50": (16, 3, True),
    "resnet101": (16, 4, True),
    "resnet152": (16, 5, True),
    "densenet161": (18, 4, True),
    "inception.v3": (20, 4, True),
    "resnext101.32x8d": (20, 5, True),
    "vgg11": (24, 3, False),
    "wideresnet502": (28, 3, True),
    "wideresnet1012": (28, 4, True),
    "vgg13": (28, 4, False),
    "vgg16": (32, 4, False),
    "vgg16.bn": (32, 4, True),
    "vgg19": (32, 5, False),
}


def available_architectures() -> list[str]:
    return list(FAMILY_SPECS)


def build_model(
    architecture: str,
    *,
    num_classes: int = 10,
    in_channels: int = 3,
    input_size: int = 32,
    seed: int = 0,
) -> Network:
    """Build the miniature network for a Table I architecture name.

    Weights are random but deterministic in ``seed`` — inference output is
    meaningless semantically (like any untrained net) but fully reproducible,
    which is what the scheduling experiments need.  ``input_size`` is the
    expected spatial resolution; down-sampling stops once feature maps reach
    1×1 so deep families still accept small (e.g. 28×28 MNIST) inputs.
    """
    if architecture not in FAMILY_SPECS:
        raise KeyError(
            f"unknown architecture {architecture!r}; known: {sorted(FAMILY_SPECS)}"
        )
    if input_size < 1:
        raise ValueError("input_size must be positive")
    width, blocks, use_bn = FAMILY_SPECS[architecture]
    rng = np.random.default_rng(seed)
    layers = []
    channels = in_channels
    size = input_size
    for b in range(blocks):
        out = width * (2**b)
        layers.append(Conv2D(channels, out, 3, padding=1, rng=rng))
        if use_bn:
            layers.append(BatchNorm2D(out))
        layers.append(ReLU())
        if size >= 2:
            layers.append(MaxPool2D(2))
            size //= 2
        channels = out
    layers.append(GlobalAvgPool())
    layers.append(Flatten())
    layers.append(Linear(channels, num_classes, rng=rng))
    return Network(architecture, layers)


def build_residual_model(
    architecture: str,
    *,
    num_classes: int = 10,
    in_channels: int = 3,
    seed: int = 0,
) -> Network:
    """Residual variant of :func:`build_model` for the ResNet-style families.

    Uses :class:`~repro.models.nn.blocks.ResidualBlock` stages (stride-2
    down-sampling between stages) instead of conv/pool stacks — the
    structurally faithful miniature for the resnet/resnext/wideresnet rows
    of Table I.
    """
    from .blocks import ResidualBlock

    if architecture not in FAMILY_SPECS:
        raise KeyError(
            f"unknown architecture {architecture!r}; known: {sorted(FAMILY_SPECS)}"
        )
    if not any(architecture.startswith(fam) for fam in ("resnet", "resnext", "wideresnet")):
        raise ValueError(f"{architecture!r} is not a residual family")
    width, blocks, _ = FAMILY_SPECS[architecture]
    rng = np.random.default_rng(seed)
    layers: list = [Conv2D(in_channels, width, 3, padding=1, rng=rng), ReLU()]
    channels = width
    for b in range(blocks):
        out = width * (2**b)
        layers.append(ResidualBlock(channels, out, stride=2 if b > 0 else 1, rng=rng))
        channels = out
    layers.append(GlobalAvgPool())
    layers.append(Flatten())
    layers.append(Linear(channels, num_classes, rng=rng))
    return Network(f"{architecture}(residual)", layers)
