"""Cluster construction helpers, including heterogeneous layouts (§VI)."""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from ..sim import Simulator
from .gpu import GPUDevice
from .node import GPUNode
from .pcie import PCIeModel

__all__ = ["GPUTypeSpec", "ClusterSpec", "Cluster", "build_cluster", "PAPER_TESTBED"]


@dataclass(frozen=True)
class GPUTypeSpec:
    """Hardware characteristics of one GPU model.

    ``speed_factor`` scales inference times relative to the profiled
    baseline type (``<1`` is faster); the profiler consumes it when deriving
    per-type model profiles, exactly as §VI prescribes re-profiling on each
    unique GPU type.
    """

    name: str = "rtx2080"
    memory_mb: float = 7800.0
    pcie: PCIeModel = field(default_factory=PCIeModel)
    speed_factor: float = 1.0


@dataclass(frozen=True)
class ClusterSpec:
    """Topology: ``nodes[i]`` gives (number of GPUs, GPU type) for node ``i``."""

    nodes: tuple[tuple[int, GPUTypeSpec], ...]

    @staticmethod
    def homogeneous(num_nodes: int, gpus_per_node: int, gpu_type: GPUTypeSpec | None = None) -> "ClusterSpec":
        t = gpu_type or GPUTypeSpec()
        return ClusterSpec(tuple((gpus_per_node, t) for _ in range(num_nodes)))

    @property
    def total_gpus(self) -> int:
        return sum(n for n, _ in self.nodes)


#: The paper's testbed: 3 servers x 4 GeForce RTX 2080 (§V-A.3).
PAPER_TESTBED = ClusterSpec.homogeneous(3, 4)


class Cluster:
    """A set of GPU nodes plus flat views over their devices.

    The idle/busy views are maintained incrementally: every GPU notifies
    the cluster on a state or completion-count change (bumping
    :attr:`version`), and the device-ordered idle/busy lists are rebuilt
    lazily only when stale.  The schedulers' per-pass "any idle GPU?"
    probes therefore stop re-scanning every device.  Returned lists are
    cache snapshots — callers must not mutate them.

    Dirty-signal layer (pass elision)
    --------------------------------
    Beyond the lazily rebuilt views the cluster publishes its **idle-set
    delta** directly:

    * :attr:`idle_count` is maintained on every transition, so "is any
      GPU idle?" is one attribute load — the guard the scheduling engine
      consults before every would-be pass;
    * the frequency-ordered idle view (Alg. 1's "sorted by use
      frequency") is updated *incrementally*: a dispatch removes one GPU
      from the sorted list and a completion re-inserts one at its new
      frequency rank, replacing the old rebuild-and-sort on every state
      change.  The order is identical to
      ``sorted(idle, key=lambda g: (-g.completed_requests, g.gpu_id))``
      by construction: a GPU is re-filed on the rare occasions its key
      changes while listed (a completion bump landing after
      ``become_idle``), and its filed key makes removal exact.
    """

    def __init__(self, sim: Simulator, nodes: list[GPUNode]) -> None:
        self.sim = sim
        self.nodes = nodes
        self.gpus: list[GPUDevice] = [g for node in nodes for g in node.gpus]
        self._by_id = {g.gpu_id: g for g in self.gpus}
        if len(self._by_id) != len(self.gpus):
            raise ValueError("duplicate GPU ids in cluster")
        self._node_of = {g.gpu_id: node for node in nodes for g in node.gpus}
        #: monotone counter of GPU state/frequency changes; consumers key
        #: their own cached views off it (see idle_gpus/busy_gpus below)
        self.version = 0
        #: number of currently idle GPUs (exact, O(1) to read)
        self.idle_count = 0
        self._idle_version = -1
        self._idle_cache: list[GPUDevice] = []
        self._busy_version = -1
        self._busy_cache: list[GPUDevice] = []
        # frequency-ordered idle view: parallel (key, device) lists kept
        # sorted by (-completed_requests, gpu_id), plus the key each idle
        # GPU is filed under (doubles as the idle-membership record, and
        # stays exact when a completion count moves after insertion)
        self._freq_keys: list[tuple[int, str]] = []
        self._freq_gpus: list[GPUDevice] = []
        self._freq_key_of: dict[str, tuple[int, str]] = {}
        for g in self.gpus:
            g.on_change = self._on_gpu_change
            if g.is_idle:
                self._freq_insert(g)

    def _freq_insert(self, gpu: GPUDevice) -> None:
        key = (-gpu.completed_requests, gpu.gpu_id)
        i = bisect_left(self._freq_keys, key)
        self._freq_keys.insert(i, key)
        self._freq_gpus.insert(i, gpu)
        self._freq_key_of[gpu.gpu_id] = key
        self.idle_count += 1

    def _freq_remove(self, key: tuple[int, str]) -> None:
        # remove by the key the GPU was *filed* under: exact even when its
        # live completion count has moved on since insertion
        i = bisect_left(self._freq_keys, key)
        del self._freq_keys[i]
        del self._freq_gpus[i]
        self.idle_count -= 1

    def _on_gpu_change(self, gpu: GPUDevice) -> None:
        self.version += 1
        gpu_id = gpu.gpu_id
        filed = self._freq_key_of.get(gpu_id)
        if gpu.is_idle:
            if filed is None:
                self._freq_insert(gpu)
            elif filed[0] != -gpu.completed_requests:
                # frequency changed while idle (a completion bump landing
                # after become_idle): re-file at the new rank
                del self._freq_key_of[gpu_id]
                self._freq_remove(filed)
                self._freq_insert(gpu)
        elif filed is not None:
            del self._freq_key_of[gpu_id]
            self._freq_remove(filed)

    def gpu(self, gpu_id: str) -> GPUDevice:
        return self._by_id[gpu_id]

    def node_of(self, gpu_id: str) -> GPUNode:
        return self._node_of[gpu_id]

    def idle_gpus(self) -> list[GPUDevice]:
        if self._idle_version != self.version:
            self._idle_cache = [g for g in self.gpus if g.is_idle]
            self._idle_version = self.version
        return self._idle_cache

    def idle_gpus_by_frequency(self) -> list[GPUDevice]:
        """Idle GPUs, most-used first (Alg. 1's "sorted by frequency").

        Frequency is the number of requests the GPU has completed; ties
        break on gpu_id for determinism.  Maintained incrementally from
        the idle-set delta; each call returns a fresh snapshot *copy*
        because the scheduling passes dispatch (and so shrink the live
        view) while iterating it.
        """
        return self._freq_gpus.copy()

    def busy_gpus(self) -> list[GPUDevice]:
        if self._busy_version != self.version:
            self._busy_cache = [g for g in self.gpus if g.is_busy]
            self._busy_version = self.version
        return self._busy_cache

    def gpu_types(self) -> set[str]:
        return {g.gpu_type for g in self.gpus}

    def __len__(self) -> int:
        return len(self.gpus)

    def __iter__(self):
        return iter(self.gpus)


def build_cluster(sim: Simulator, spec: ClusterSpec = PAPER_TESTBED) -> Cluster:
    """Instantiate the nodes and devices described by ``spec``."""
    nodes = []
    for i, (num_gpus, t) in enumerate(spec.nodes):
        nodes.append(
            GPUNode(
                sim,
                f"node{i}",
                num_gpus=num_gpus,
                memory_mb=t.memory_mb,
                gpu_type=t.name,
                pcie=t.pcie,
            )
        )
    return Cluster(sim, nodes)
