"""GPU device model: memory residency, busy/idle state, SM accounting.

A :class:`GPUDevice` is the mechanical substrate under the paper's GPU
Manager.  It tracks exactly the state the scheduler and Cache Manager need:

* which model instances are resident (and how much memory they hold),
* whether the GPU is idle, uploading a model (PCIe busy, SM idle) or
  executing inference (SM busy) — the paper's GPU Managers enforce one
  request at a time per GPU (§III-C),
* cumulative time per state, from which §V-C's SM utilization is computed.

The device itself never makes policy decisions; eviction and dispatch
belong to the Cache Manager and Scheduler.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable

from ..sim import IntervalAccumulator, Simulator
from .pcie import PCIeModel
from .process import GPUProcess, ProcessState

__all__ = ["GPUState", "GPUDevice", "GPUMemoryError"]


class GPUMemoryError(RuntimeError):
    """Raised when a reservation would exceed device memory (OOM guard)."""


class GPUState(enum.Enum):
    IDLE = "idle"
    LOADING = "load"     # uploading a model over PCIe; SM idle
    INFERRING = "infer"  # executing a batch; SM busy
    OFFLINE = "offline"  # failed / drained; unschedulable


class GPUDevice:
    """One physical GPU.

    Parameters
    ----------
    gpu_id:
        Cluster-unique identifier, e.g. ``"node0/cuda:1"``.
    memory_mb:
        Usable device memory.  Default 7800 MB models an RTX 2080 (8 GB)
        minus driver/context reserve, matching the paper's testbed where
        2–5 of the Table I models fit per GPU.
    gpu_type:
        Profile key for heterogeneous clusters (§VI): devices of the same
        type share model load/inference profiles.
    """

    def __init__(
        self,
        sim: Simulator,
        gpu_id: str,
        *,
        memory_mb: float = 7800.0,
        gpu_type: str = "rtx2080",
        node_id: str = "node0",
        pcie: PCIeModel | None = None,
    ) -> None:
        if memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        self.sim = sim
        self.gpu_id = gpu_id
        self.node_id = node_id
        self.gpu_type = gpu_type
        self.memory_mb = float(memory_mb)
        self.pcie = pcie or PCIeModel()
        self.state = GPUState.IDLE
        # state flags as plain attributes: the scheduling passes probe
        # is_idle tens of times per pass, so a property call would be a
        # measurable share of the pass cost.  _set_state keeps them exact.
        self.is_idle = True
        self.is_busy = False
        self.is_online = True
        self._processes: dict[str, GPUProcess] = {}  # model_instance -> process
        self._used_mb = 0.0
        # keyed by the state value strings, read via the enum's _value_
        # slot: interned-string hashing is C-level, while both Enum.value
        # (a DynamicClassAttribute) and Enum.__hash__ are Python-level —
        # this runs on every busy/idle transition
        self._intervals = IntervalAccumulator(sim)
        self._intervals.start(GPUState.IDLE._value_)
        self._completed_requests = 0
        #: observer called on every state or completion-count change; the
        #: Cluster uses it to keep its idle/busy views incremental
        self.on_change: Callable[["GPUDevice"], None] | None = None
        # array-backed lifecycle slots, stamped at construction by the
        # owning GPUManager (node-local) and Scheduler (cluster-wide): the
        # hot execute → _loaded → _start_inference → _finished chain and
        # the dispatch plumbing index preallocated lists with these instead
        # of hashing gpu_id strings into per-manager dicts on every event
        self._mgr_slot = 0
        self._sched_slot = 0

    @property
    def completed_requests(self) -> int:
        """Use-frequency for Alg. 1's idle-GPU ordering."""
        return self._completed_requests

    @completed_requests.setter
    def completed_requests(self, value: int) -> None:
        self._completed_requests = value
        if self.on_change is not None:
            self.on_change(self)

    # ------------------------------------------------------------------
    # Memory & residency
    # ------------------------------------------------------------------
    @property
    def used_mb(self) -> float:
        return self._used_mb

    @property
    def free_mb(self) -> float:
        return self.memory_mb - self._used_mb

    def resident_models(self) -> list[str]:
        """Model instances currently occupying device memory."""
        return list(self._processes)

    def has_model(self, model_instance: str) -> bool:
        return model_instance in self._processes

    def process_for(self, model_instance: str) -> GPUProcess:
        return self._processes[model_instance]

    def admit(self, model_instance: str, occupied_mb: float) -> GPUProcess:
        """Reserve memory and register a new (STARTING) GPU process.

        Raises :class:`GPUMemoryError` if the model does not fit — callers
        (the Cache Manager) must evict victims first; the device never
        silently oversubscribes, mirroring the OOM-avoidance guarantee.
        """
        if model_instance in self._processes:
            raise ValueError(f"{model_instance} already resident on {self.gpu_id}")
        if occupied_mb > self.memory_mb:
            raise GPUMemoryError(
                f"{model_instance} ({occupied_mb} MB) can never fit on "
                f"{self.gpu_id} ({self.memory_mb} MB)"
            )
        if occupied_mb > self.free_mb + 1e-9:
            raise GPUMemoryError(
                f"{model_instance} needs {occupied_mb} MB but {self.gpu_id} "
                f"has only {self.free_mb:.0f} MB free"
            )
        proc = GPUProcess(
            model_instance=model_instance,
            occupied_mb=float(occupied_mb),
            gpu_id=self.gpu_id,
            started_at=self.sim.now,
        )
        self._processes[model_instance] = proc
        self._used_mb += occupied_mb
        return proc

    def evict(self, model_instance: str, *, force: bool = False) -> GPUProcess:
        """Kill the process hosting ``model_instance`` and release its memory.

        ``force=True`` allows killing a RUNNING process — only failure
        handling does this (the in-flight request is re-queued elsewhere).
        """
        proc = self._processes.pop(model_instance, None)
        if proc is None:
            raise KeyError(f"{model_instance} is not resident on {self.gpu_id}")
        if proc.state is ProcessState.RUNNING and not force:
            self._processes[model_instance] = proc
            raise RuntimeError(
                f"cannot evict {model_instance} on {self.gpu_id}: inference in flight"
            )
        proc.kill(self.sim.now)
        self._used_mb -= proc.occupied_mb
        if self._used_mb < 1e-9:
            self._used_mb = 0.0
        return proc

    def evict_many(self, model_instances: Iterable[str]) -> list[GPUProcess]:
        return [self.evict(m) for m in model_instances]

    # ------------------------------------------------------------------
    # Busy / idle state machine
    # ------------------------------------------------------------------
    def begin_loading(self) -> None:
        self._transition(GPUState.IDLE, GPUState.LOADING)

    def begin_inference(self) -> None:
        if self.state is GPUState.INFERRING:
            raise RuntimeError(f"{self.gpu_id} already inferring")
        self._set_state(GPUState.INFERRING)

    def become_idle(self) -> None:
        if self.state is GPUState.OFFLINE:
            raise RuntimeError(f"{self.gpu_id} is offline; bring it online first")
        self._set_state(GPUState.IDLE)

    def go_offline(self) -> None:
        """Fail or drain the GPU (allowed from any state)."""
        self._set_state(GPUState.OFFLINE)

    def come_online(self) -> None:
        if self.state is not GPUState.OFFLINE:
            raise RuntimeError(f"{self.gpu_id} is not offline")
        self._set_state(GPUState.IDLE)

    def _transition(self, expected: GPUState, to: GPUState) -> None:
        if self.state is not expected:
            raise RuntimeError(f"{self.gpu_id}: expected {expected}, was {self.state}")
        self._set_state(to)

    def _set_state(self, to: GPUState) -> None:
        self._intervals.switch(to._value_)
        self.state = to
        self.is_idle = to is GPUState.IDLE
        self.is_busy = not self.is_idle
        self.is_online = to is not GPUState.OFFLINE
        if self.on_change is not None:
            self.on_change(self)

    # ------------------------------------------------------------------
    # SM-utilization accounting (paper §V-C)
    # ------------------------------------------------------------------
    def time_in(self, state: GPUState) -> float:
        return self._intervals.total(state._value_)

    def sm_utilization(self, horizon: float | None = None) -> float:
        """Fraction of elapsed time the SMs were executing inference.

        Loading time counts *against* utilization — "the SM utilization
        remains zero until the victim model becomes evicted and the new
        model is uploaded" (§V-C).
        """
        return self._intervals.fraction(GPUState.INFERRING._value_, horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GPUDevice {self.gpu_id} {self.state.value} "
            f"{self._used_mb:.0f}/{self.memory_mb:.0f} MB "
            f"models={sorted(self._processes)}>"
        )
