"""GPU nodes: hosts that carry one or more GPU devices.

Mirrors the paper's testbed topology (§V-A.3): three servers, four
GeForce RTX 2080 each, one GPU Manager per node.  The node records the
"GPU address" the Scheduler ships with each dispatch — the server IP plus
the CUDA device name (§III-B).
"""

from __future__ import annotations

from ..sim import Simulator
from .gpu import GPUDevice
from .pcie import PCIeModel

__all__ = ["GPUNode"]


class GPUNode:
    """A host machine with several GPUs."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        *,
        ip: str | None = None,
        num_gpus: int = 4,
        memory_mb: float = 7800.0,
        gpu_type: str = "rtx2080",
        pcie: PCIeModel | None = None,
    ) -> None:
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        self.sim = sim
        self.node_id = node_id
        self.ip = ip or f"10.0.0.{abs(hash(node_id)) % 200 + 10}"
        self.gpus: list[GPUDevice] = [
            GPUDevice(
                sim,
                f"{node_id}/cuda:{i}",
                memory_mb=memory_mb,
                gpu_type=gpu_type,
                node_id=node_id,
                pcie=pcie,
            )
            for i in range(num_gpus)
        ]

    def gpu_address(self, gpu: GPUDevice) -> tuple[str, str]:
        """(server IP, CUDA device name) pair shipped with each dispatch."""
        if gpu.node_id != self.node_id:
            raise ValueError(f"{gpu.gpu_id} is not on node {self.node_id}")
        return (self.ip, gpu.gpu_id.split("/", 1)[1])

    def __iter__(self):
        return iter(self.gpus)

    def __len__(self) -> int:
        return len(self.gpus)
