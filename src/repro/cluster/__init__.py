"""Simulated GPU cluster substrate: devices, nodes, PCIe, GPU processes."""

from .gpu import GPUDevice, GPUMemoryError, GPUState
from .node import GPUNode
from .pcie import PCIeModel, fit_pcie_model
from .process import GPUProcess, ProcessState
from .topology import PAPER_TESTBED, Cluster, ClusterSpec, GPUTypeSpec, build_cluster

__all__ = [
    "GPUDevice",
    "GPUMemoryError",
    "GPUState",
    "GPUNode",
    "PCIeModel",
    "fit_pcie_model",
    "GPUProcess",
    "ProcessState",
    "PAPER_TESTBED",
    "Cluster",
    "ClusterSpec",
    "GPUTypeSpec",
    "build_cluster",
]
