"""PCI-Express transfer-time model.

The paper (§II-B) identifies host↔GPU data transfer over PCIe as the main
overhead of running short-lived inference functions on GPUs.  Table I
publishes measured model-loading times; fitting ``load = a + size / bw`` to
those rows gives an effective bandwidth of ~1.6 GB/s and a fixed overhead of
~1.6 s (process start + CUDA context + allocator warm-up).  Those fitted
values are the defaults here, so models *not* in Table I (custom
architectures, heterogeneous GPUs) still get realistic loading times.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PCIeModel", "fit_pcie_model"]


@dataclass(frozen=True)
class PCIeModel:
    """Affine transfer-time model: ``time = fixed_overhead_s + mb / bandwidth_mb_s``.

    Parameters
    ----------
    bandwidth_mb_s:
        Effective host→device copy bandwidth in MB/s.  Effective bandwidth
        is well below the PCIe link peak because model loading interleaves
        deserialization, allocation, and many small copies.
    fixed_overhead_s:
        Per-load constant cost: spawning the GPU process, creating the CUDA
        context, and initializing the framework runtime.
    """

    bandwidth_mb_s: float = 1614.0
    fixed_overhead_s: float = 1.62

    def __post_init__(self) -> None:
        if self.bandwidth_mb_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.fixed_overhead_s < 0:
            raise ValueError("fixed overhead cannot be negative")

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to move ``size_mb`` megabytes host→device (one load)."""
        if size_mb < 0:
            raise ValueError("size_mb cannot be negative")
        return self.fixed_overhead_s + size_mb / self.bandwidth_mb_s

    def scaled(self, factor: float) -> "PCIeModel":
        """A link ``factor`` times faster (e.g. PCIe gen bump); overhead unchanged."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return PCIeModel(self.bandwidth_mb_s * factor, self.fixed_overhead_s)


def fit_pcie_model(sizes_mb: list[float], load_times_s: list[float]) -> PCIeModel:
    """Least-squares fit of the affine model to measured (size, load-time) pairs.

    Used by the profiler (paper §IV-A / §VI "Heterogeneity of GPUs") to derive
    a transfer model for each unique GPU type from a handful of profiled
    models.
    """
    import numpy as np

    x = np.asarray(sizes_mb, dtype=float)
    y = np.asarray(load_times_s, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (size, time) pairs")
    slope, intercept = np.polyfit(x, y, 1)
    if slope <= 0:
        raise ValueError("measured load times do not increase with size")
    return PCIeModel(bandwidth_mb_s=1.0 / slope, fixed_overhead_s=max(0.0, float(intercept)))
