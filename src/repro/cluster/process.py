"""GPU processes: long-lived model hosts.

The paper's GPU Manager runs one GPU process per model (§III-C, §VI): the
process uploads its model when it starts and then serves inference requests
for that model until the Cache Manager evicts the model, at which point the
GPU Manager kills the process.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .gpu import GPUDevice

__all__ = ["ProcessState", "GPUProcess"]

_pid_counter = itertools.count(1)


class ProcessState(enum.Enum):
    """Lifecycle of a GPU process."""

    STARTING = "starting"  # spawned; model upload in flight
    READY = "ready"        # model resident; waiting for inputs
    RUNNING = "running"    # executing an inference batch
    KILLED = "killed"      # evicted; memory released


@dataclass(slots=True)
class GPUProcess:
    """A process pinned to one model instance on one GPU.

    Attributes
    ----------
    model_instance:
        Cache-item identity (a unique deployed function's model).  Two
        functions that happen to use the same architecture still get
        distinct processes and distinct cache items (DESIGN.md §5.2).
    occupied_mb:
        GPU memory held while alive — the Table I "occupation size", i.e.
        weights + activations head-room for the fixed batch size of 32.
    """

    model_instance: str
    occupied_mb: float
    gpu_id: str
    pid: int = field(default_factory=lambda: next(_pid_counter))
    state: ProcessState = ProcessState.STARTING
    started_at: float = 0.0
    ready_at: float | None = None
    killed_at: float | None = None
    served_requests: int = 0

    def mark_ready(self, now: float) -> None:
        if self.state is not ProcessState.STARTING:
            raise RuntimeError(f"process {self.pid} cannot become ready from {self.state}")
        self.state = ProcessState.READY
        self.ready_at = now

    def mark_running(self) -> None:
        if self.state is not ProcessState.READY:
            raise RuntimeError(f"process {self.pid} cannot run from {self.state}")
        self.state = ProcessState.RUNNING

    def mark_done(self) -> None:
        if self.state is not ProcessState.RUNNING:
            raise RuntimeError(f"process {self.pid} is not running")
        self.state = ProcessState.READY
        self.served_requests += 1

    def kill(self, now: float) -> None:
        if self.state is ProcessState.KILLED:
            return
        self.state = ProcessState.KILLED
        self.killed_at = now

    @property
    def alive(self) -> bool:
        return self.state is not ProcessState.KILLED
