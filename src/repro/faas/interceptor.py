"""The customized ML interface injected into GPU-enabled functions.

§III-A: for GPU-enabled functions the Gateway "replaces the interface that
the function uses for loading and running a model with a customized
interface that redirects those requests to the GPU Manager.  This change of
interface is not visible to the end-user."

User code keeps calling the familiar two-step API::

    model = api.load("resnet50")      # torch.load(...)
    out = model(batch, on_result=cb)  # model(input)

but ``load`` returns a :class:`GPUModelHandle` whose call builds an
:class:`~repro.core.request.InferenceRequest` and submits it to the global
Scheduler instead of touching any GPU directly.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from ..core.request import InferenceRequest
from ..models.profiles import ModelInstance
from ..models.zoo import get_profile
from ..runtime.system import FaaSCluster

__all__ = ["GPUModelHandle", "InterceptedMLAPI"]

_instance_counter = itertools.count(1)


class GPUModelHandle:
    """Stands in for a loaded model object inside the function container.

    Calling the handle submits the inference to the Scheduler and returns
    the request; the result arrives asynchronously via ``on_result``.
    """

    def __init__(self, system: FaaSCluster, instance: ModelInstance, function_name: str) -> None:
        self._system = system
        self.instance = instance
        self.function_name = function_name
        self._pending: dict[int, Callable[[InferenceRequest], None]] = {}
        system.subscribe_completion(self._route)

    def __call__(
        self,
        batch: Any,
        *,
        batch_size: int = 32,
        tenant: str = "default",
        on_result: Callable[[InferenceRequest], None] | None = None,
    ) -> InferenceRequest:
        request = InferenceRequest(
            function_name=self.function_name,
            model=self.instance,
            arrival_time=self._system.sim.now,
            batch_size=batch_size,
            payload=batch,
            tenant=tenant,
        )
        if on_result is not None:
            self._pending[request.request_id] = on_result
        self._system.submit(request)
        return request

    def _route(self, request: InferenceRequest) -> None:
        cb = self._pending.pop(request.request_id, None)
        if cb is not None:
            cb(request)


class InterceptedMLAPI:
    """The replacement for ``torch`` seen by GPU-enabled functions."""

    def __init__(self, system: FaaSCluster, function_name: str, tenant: str = "default") -> None:
        self._system = system
        self._function_name = function_name
        self._tenant = tenant

    def load(
        self,
        architecture: str,
        *,
        instance_id: str | None = None,
        with_network: bool = False,
        seed: int = 0,
    ) -> GPUModelHandle:
        """The intercepted ``torch.load`` — mints this function's private
        model instance (its own cache item) instead of reading weights.

        With ``with_network=True`` the instance carries a real NumPy network
        (built by :func:`repro.models.nn.build_model`), so completed requests
        contain genuine class probabilities in ``request.result``.
        """
        instance = ModelInstance(
            instance_id or f"{self._function_name}#m{next(_instance_counter)}",
            get_profile(architecture),
            tenant=self._tenant,
        )
        if with_network:
            from ..models.nn import build_model

            instance.metadata["network"] = build_model(architecture, seed=seed)
        self._system.register_model(instance)
        return GPUModelHandle(self._system, instance, self._function_name)
