"""Function specifications and Dockerfile parsing.

§III-A: "The end-user can include a GPU-enable flag in the Dockerfile of
the function when registering the function using the Gateway.  The Gateway
checks the GPU-enable flag in the Dockerfile and replaces the interface
that the function uses for loading and running a model with a customized
interface that redirects those requests to the GPU Manager."

We model the Dockerfile as text in the standard format; the GPU-enable flag
is either ``ENV GPU_ENABLE=1`` (truthy values: 1/true/yes/on) or
``LABEL com.faas.gpu="true"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Dockerfile", "FunctionSpec", "default_template"]

_TRUTHY = {"1", "true", "yes", "on"}


@dataclass(frozen=True)
class Dockerfile:
    """A parsed Dockerfile: base image, env, labels, and build steps."""

    base_image: str
    env: dict[str, str]
    labels: dict[str, str]
    steps: tuple[str, ...]  # RUN/COPY/etc. lines, kept for the build log

    @staticmethod
    def parse(text: str) -> "Dockerfile":
        base = ""
        env: dict[str, str] = {}
        labels: dict[str, str] = {}
        steps: list[str] = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            op, _, rest = line.partition(" ")
            op = op.upper()
            rest = rest.strip()
            if op == "FROM":
                base = rest
            elif op in ("ENV", "LABEL"):
                target = env if op == "ENV" else labels
                for key, value in _parse_pairs(rest):
                    target[key] = value
            else:
                steps.append(line)
        if not base:
            raise ValueError("Dockerfile has no FROM line")
        return Dockerfile(base_image=base, env=env, labels=labels, steps=tuple(steps))

    @property
    def gpu_enabled(self) -> bool:
        """The paper's GPU-enable flag."""
        env_flag = self.env.get("GPU_ENABLE", "").lower() in _TRUTHY
        label_flag = self.labels.get("com.faas.gpu", "").strip('"').lower() in _TRUTHY
        return env_flag or label_flag


def _parse_pairs(rest: str) -> list[tuple[str, str]]:
    """Parse ``k=v k2="v2"`` pairs (also the legacy ``ENV key value`` form)."""
    if "=" not in rest:
        key, _, value = rest.partition(" ")
        return [(key, value.strip())] if key else []
    pairs = []
    for token in rest.split():
        if "=" in token:
            key, _, value = token.partition("=")
            pairs.append((key, value.strip('"')))
    return pairs


def default_template(gpu: bool = True) -> str:
    """The code template the platform hands to end-users (§II-A)."""
    gpu_line = "ENV GPU_ENABLE=1\n" if gpu else ""
    return (
        "FROM faas/python3-ml:latest\n"
        f"{gpu_line}"
        "COPY handler.py /app/handler.py\n"
        "RUN pip install -r requirements.txt\n"
    )


@dataclass
class FunctionSpec:
    """A deployable FaaS function.

    ML-inference functions declare the model architecture they serve;
    at registration the Gateway mints the function's private
    :class:`~repro.models.ModelInstance` (its own weights → its own cache
    item).  ``preprocess`` / ``postprocess`` run on the function container
    around the GPU call (e.g. image decode, label mapping).
    """

    name: str
    dockerfile: str = field(default_factory=default_template)
    model_architecture: str | None = None
    tenant: str = "default"
    batch_size: int = 32
    preprocess: Callable[[Any], Any] | None = None
    postprocess: Callable[[Any], Any] | None = None
    #: simulated CPU cost of the handler outside the GPU call
    handler_time_s: float = 0.0
    #: plain (non-ML) functions: the handler itself plus its CPU time
    handler: Callable[[Any], Any] | None = None
    min_replicas: int = 1
    max_replicas: int = 8

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError("function name must be non-empty and slash-free")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.handler_time_s < 0:
            raise ValueError("handler_time_s cannot be negative")
        if self.min_replicas < 0 or self.max_replicas < max(self.min_replicas, 1):
            raise ValueError("invalid replica bounds")

    @property
    def parsed_dockerfile(self) -> Dockerfile:
        return Dockerfile.parse(self.dockerfile)

    @property
    def gpu_enabled(self) -> bool:
        return self.parsed_dockerfile.gpu_enabled

    @property
    def is_inference(self) -> bool:
        return self.model_architecture is not None
