"""Function containers: build, cold start, warm replicas.

The FaaS platform "builds the function by creating a running container that
installs the required resources written in the template" (§II-A).  We model
the build once per function and a per-replica cold start; the autoscaler
grows and shrinks the warm replica pool.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable

from ..sim import Simulator
from .spec import FunctionSpec

__all__ = ["ContainerState", "Container", "ContainerPool", "DEFAULT_COLD_START_S"]

#: replica cold-start latency (image pull + container create + watchdog boot)
DEFAULT_COLD_START_S = 0.5
#: one-time image build latency at registration
DEFAULT_BUILD_S = 2.0

_container_ids = itertools.count(1)


class ContainerState(enum.Enum):
    STARTING = "starting"
    IDLE = "idle"        # warm, ready for an invocation
    BUSY = "busy"        # running the function handler
    STOPPED = "stopped"


class Container:
    """One replica of a function's container."""

    def __init__(self, sim: Simulator, spec: FunctionSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.container_id = f"{spec.name}-{next(_container_ids)}"
        self.state = ContainerState.STARTING
        self.started_at = sim.now
        self.handled = 0

    def mark_ready(self) -> None:
        if self.state is not ContainerState.STARTING:
            raise RuntimeError(f"{self.container_id} cannot become ready from {self.state}")
        self.state = ContainerState.IDLE

    def acquire(self) -> None:
        if self.state is not ContainerState.IDLE:
            raise RuntimeError(f"{self.container_id} is not idle")
        self.state = ContainerState.BUSY

    def release(self) -> None:
        if self.state is not ContainerState.BUSY:
            raise RuntimeError(f"{self.container_id} is not busy")
        self.state = ContainerState.IDLE
        self.handled += 1

    def stop(self) -> None:
        self.state = ContainerState.STOPPED


class ContainerPool:
    """All replicas of one function, with cold-start dynamics."""

    def __init__(
        self,
        sim: Simulator,
        spec: FunctionSpec,
        *,
        cold_start_s: float = DEFAULT_COLD_START_S,
        build_s: float = DEFAULT_BUILD_S,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.cold_start_s = cold_start_s
        self.build_s = build_s
        self.containers: list[Container] = []
        self.built = False
        self._build_done_at: float | None = None
        self._waiters: list[Callable[[Container], None]] = []

    # ------------------------------------------------------------------
    def build(self, on_done: Callable[[], None] | None = None) -> None:
        """One-time image build; replicas can only start afterwards."""
        if self.built:
            if on_done:
                on_done()
            return

        def _done() -> None:
            self.built = True
            self._build_done_at = self.sim.now
            if on_done:
                on_done()

        self.sim.schedule(self.build_s, _done)

    def scale_to(self, replicas: int) -> None:
        """Start or stop replicas toward the target count."""
        if replicas < 0:
            raise ValueError("replicas cannot be negative")
        if not self.built:
            raise RuntimeError(f"{self.spec.name}: build the image before scaling")
        replicas = max(self.spec.min_replicas, min(replicas, self.spec.max_replicas))
        alive = [c for c in self.containers if c.state is not ContainerState.STOPPED]
        if len(alive) < replicas:
            for _ in range(replicas - len(alive)):
                self._start_one()
        elif len(alive) > replicas:
            # stop idle replicas first; never kill a busy one
            for c in alive:
                if len(alive) <= replicas:
                    break
                if c.state is ContainerState.IDLE:
                    c.stop()
                    alive.remove(c)

    def _start_one(self) -> Container:
        c = Container(self.sim, self.spec)
        self.containers.append(c)

        def _ready() -> None:
            c.mark_ready()
            # serve any invocation that was waiting for a warm replica
            while self._waiters and c.state is ContainerState.IDLE:
                waiter = self._waiters.pop(0)
                waiter(c)

        self.sim.schedule(self.cold_start_s, _ready)
        return c

    # ------------------------------------------------------------------
    def acquire(self, on_ready: Callable[[Container], None]) -> None:
        """Hand an idle replica to ``on_ready``, cold-starting if needed."""
        for c in self.containers:
            if c.state is ContainerState.IDLE:
                on_ready(c)
                return
        self._waiters.append(on_ready)
        starting = sum(1 for c in self.containers if c.state is ContainerState.STARTING)
        if len(self._waiters) > starting:
            self._start_one()

    # ------------------------------------------------------------------
    def replica_count(self) -> int:
        return sum(1 for c in self.containers if c.state is not ContainerState.STOPPED)

    def idle_count(self) -> int:
        return sum(1 for c in self.containers if c.state is ContainerState.IDLE)

    def busy_count(self) -> int:
        return sum(1 for c in self.containers if c.state is ContainerState.BUSY)
