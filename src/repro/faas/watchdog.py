"""The Watchdog: per-container function supervisor.

§II-A: "The Watchdog receives the invocation request from the Gateway,
executes the function with the given input, returns the response from the
function to the Gateway, and stores the status and metrics of the function
invocation, such as execution latency, to Datastore."

For GPU-enabled inference functions the execution step is: run the
function's ``preprocess`` on the container, call the intercepted model
handle (which routes through Scheduler → GPU Manager), then ``postprocess``
and respond.  Plain functions run their handler for a simulated CPU time.

GPU-backend liveness
--------------------
The per-container Watchdog above supervises *functions*; the GPU
*backends* are supervised by the lease-backed :class:`HealthWatchdog`
(re-exported here from :mod:`repro.chaos.health`, where it lives to stay
clear of the faas ↔ runtime import cycle).  Historically a GPU Manager's
expired lease only deleted its Datastore keys — the Scheduler kept
dispatching to the dead backend.  The health watchdog closes that gap:
each GPU's ``gpu/health/<gpu_id>`` key rides a TTL lease refreshed by a
heartbeat loop, and a lease *expiry* (missed heartbeats) now escalates
through ``FaaSCluster.fail_gpu`` — the GPU is marked unschedulable, its
in-flight and locally-queued work is re-queued, and its cache locations
are withdrawn — then self-heals via ``recover_gpu`` when heartbeats
resume.  ``FaaSCluster`` builds it automatically whenever a fault plan is
active (``SystemConfig(fault_profile=...)``).
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..chaos.health import HealthWatchdog
from ..datastore.client import DatastoreClient
from ..sim import Simulator
from .container import Container
from .interceptor import GPUModelHandle
from .spec import FunctionSpec

__all__ = ["Invocation", "InvocationStatus", "Watchdog", "HealthWatchdog"]

_invocation_ids = itertools.count(1)


class InvocationStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class Invocation:
    """One end-user call of a function through the Gateway."""

    function: str
    payload: Any
    submitted_at: float
    invocation_id: int = field(default_factory=lambda: next(_invocation_ids))
    status: InvocationStatus = InvocationStatus.PENDING
    response: Any = None
    error: str | None = None
    completed_at: float | None = None
    on_response: Callable[["Invocation"], None] | None = None

    @property
    def latency(self) -> float:
        if self.completed_at is None:
            raise RuntimeError(f"invocation {self.invocation_id} has not completed")
        return self.completed_at - self.submitted_at

    def _finish(self, status: InvocationStatus, now: float) -> None:
        self.status = status
        self.completed_at = now
        if self.on_response is not None:
            self.on_response(self)


class Watchdog:
    """Executes invocations on one function's containers."""

    def __init__(
        self,
        sim: Simulator,
        spec: FunctionSpec,
        *,
        datastore: DatastoreClient | None = None,
        model_handle: GPUModelHandle | None = None,
    ) -> None:
        if spec.is_inference and model_handle is None:
            raise ValueError(f"{spec.name}: inference functions need a model handle")
        self.sim = sim
        self.spec = spec
        self.datastore = datastore
        self.model_handle = model_handle
        self.completed = 0
        self.failed = 0
        #: bounded textual log, like `faas-cli logs <fn>`
        self._logs: deque[str] = deque(maxlen=1000)

    def log(self, message: str) -> None:
        self._logs.append(f"[{self.sim.now:10.3f}] {self.spec.name}: {message}")

    def logs(self, tail: int | None = None) -> list[str]:
        lines = list(self._logs)
        return lines if tail is None else lines[-tail:]

    # ------------------------------------------------------------------
    def handle(self, invocation: Invocation, container: Container) -> None:
        """Run ``invocation`` on ``container`` (which must be warm)."""
        container.acquire()
        invocation.status = InvocationStatus.RUNNING
        self.log(f"invocation {invocation.invocation_id} started on {container.container_id}")
        if self.spec.is_inference:
            self.sim.schedule(
                self.spec.handler_time_s, self._run_inference, invocation, container
            )
        else:
            self.sim.schedule(
                self.spec.handler_time_s, self._run_plain, invocation, container
            )

    # ------------------------------------------------------------------
    def _run_inference(self, invocation: Invocation, container: Container) -> None:
        batch = invocation.payload
        if self.spec.preprocess is not None:
            try:
                batch = self.spec.preprocess(batch)
            except Exception as exc:  # noqa: BLE001 - function errors are data
                self._fail(invocation, container, f"preprocess: {exc}")
                return
        assert self.model_handle is not None

        def _on_result(request) -> None:
            response = request.result
            if self.spec.postprocess is not None:
                try:
                    response = self.spec.postprocess(request.result)
                except Exception as exc:  # noqa: BLE001
                    self._fail(invocation, container, f"postprocess: {exc}")
                    return
            self._succeed(invocation, container, response)

        self.model_handle(
            batch,
            batch_size=self.spec.batch_size,
            tenant=self.spec.tenant,
            on_result=_on_result,
        )

    def _run_plain(self, invocation: Invocation, container: Container) -> None:
        if self.spec.handler is None:
            self._fail(invocation, container, "no handler registered")
            return
        try:
            response = self.spec.handler(invocation.payload)
        except Exception as exc:  # noqa: BLE001
            self._fail(invocation, container, str(exc))
            return
        self._succeed(invocation, container, response)

    # ------------------------------------------------------------------
    def _succeed(self, invocation: Invocation, container: Container, response: Any) -> None:
        container.release()
        invocation.response = response
        invocation._finish(InvocationStatus.SUCCEEDED, self.sim.now)
        self.completed += 1
        self.log(
            f"invocation {invocation.invocation_id} succeeded "
            f"({invocation.latency:.3f}s)"
        )
        self._record(invocation, container)

    def _fail(self, invocation: Invocation, container: Container, error: str) -> None:
        container.release()
        invocation.error = error
        invocation._finish(InvocationStatus.FAILED, self.sim.now)
        self.failed += 1
        self.log(f"invocation {invocation.invocation_id} FAILED: {error}")
        self._record(invocation, container)

    def _record(self, invocation: Invocation, container: Container) -> None:
        # runs inside a simulator event: against a batched Datastore this
        # put rides the invocation-completion action's single transaction
        if self.datastore is None:
            return
        self.datastore.put(
            f"fn/metrics/{self.spec.name}/{invocation.invocation_id}",
            {
                "status": invocation.status.value,
                "latency_s": invocation.latency,
                "container": container.container_id,
                "error": invocation.error,
            },
        )
