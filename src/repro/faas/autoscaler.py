"""Demand-driven function autoscaling.

§II-A: the Datastore "can also be configured to trigger function scaling
actions through the Gateway when the demand for the functions changes
dynamically."  This autoscaler polls each function's recent invocation
arrivals and scales its container pool toward a target per-replica
concurrency, bounded by the spec's min/max replicas.
"""

from __future__ import annotations

from collections import defaultdict, deque

from ..sim import PeriodicTimer, Simulator
from .gateway import Gateway

__all__ = ["Autoscaler"]


class Autoscaler:
    """Periodic replica controller over all registered functions."""

    def __init__(
        self,
        sim: Simulator,
        gateway: Gateway,
        *,
        period_s: float = 10.0,
        target_per_replica: float = 50.0,
        window_s: float = 30.0,
    ) -> None:
        """``target_per_replica`` is the invocation budget one replica should
        absorb per ``window_s`` sliding window; replicas scale to demand/budget."""
        if target_per_replica <= 0 or window_s <= 0:
            raise ValueError("target_per_replica and window_s must be positive")
        self.sim = sim
        self.gateway = gateway
        self.target_per_replica = target_per_replica
        self.window_s = window_s
        self._timer = PeriodicTimer(sim, period_s, self.tick)
        self._last_counts: dict[str, int] = defaultdict(int)
        self._arrivals: dict[str, deque[tuple[float, int]]] = defaultdict(deque)
        self.decisions: list[tuple[float, str, int]] = []  # (time, fn, replicas)

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One scaling pass over every function."""
        now = self.sim.now
        for name in self.gateway.list_functions():
            fn = self.gateway.get(name)
            if not fn.pool.built:
                continue
            new = fn.invocations - self._last_counts[name]
            self._last_counts[name] = fn.invocations
            window = self._arrivals[name]
            window.append((now, new))
            while window and window[0][0] < now - self.window_s:
                window.popleft()
            demand = sum(n for _, n in window)  # arrivals within the window
            want = max(1, -(-demand // int(self.target_per_replica)))  # ceil div
            want = max(fn.spec.min_replicas, min(int(want), fn.spec.max_replicas))
            if want != fn.pool.replica_count():
                fn.pool.scale_to(want)
                self.decisions.append((now, name, want))
