"""Multi-namespace support (paper §VI, "Multi-tenancy and Security").

"OpenFaaS Pro has support for multiple namespaces, which in combination
with its security features, can provide logical segregation of groups of
functions belonging to different tenants."

A :class:`NamespaceManager` partitions one Gateway into named namespaces.
Each namespace belongs to a tenant; functions registered through a
:class:`NamespaceView` are automatically name-prefixed, tagged with the
namespace's tenant (so the :class:`~repro.core.tenancy.TenancyController`
quotas apply), and invisible to other namespaces' views.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .gateway import FunctionNotFound, Gateway, RegisteredFunction
from .spec import FunctionSpec
from .watchdog import Invocation

__all__ = ["Namespace", "NamespaceView", "NamespaceManager", "NamespaceError"]

_SEP = "."


class NamespaceError(PermissionError):
    """Cross-namespace access or namespace misuse."""


@dataclass(frozen=True)
class Namespace:
    """A named, tenant-owned segment of the platform."""

    name: str
    tenant: str

    def __post_init__(self) -> None:
        if not self.name or _SEP in self.name or "/" in self.name:
            raise ValueError(f"invalid namespace name {self.name!r}")

    def qualify(self, function_name: str) -> str:
        return f"{self.name}{_SEP}{function_name}"


class NamespaceView:
    """A tenant's handle on its namespace: scoped CRUD + invoke."""

    def __init__(self, manager: "NamespaceManager", namespace: Namespace) -> None:
        self._manager = manager
        self.namespace = namespace

    # -- scoped CRUD ------------------------------------------------------
    def register(self, spec: FunctionSpec) -> RegisteredFunction:
        """Register inside the namespace; the spec's tenant is forced to the
        namespace owner so quota accounting cannot be spoofed."""
        scoped = replace(
            spec, name=self.namespace.qualify(spec.name), tenant=self.namespace.tenant
        )
        return self._manager.gateway.register(scoped)

    def list_functions(self) -> list[str]:
        prefix = self.namespace.name + _SEP
        return [
            name[len(prefix):]
            for name in self._manager.gateway.list_functions()
            if name.startswith(prefix)
        ]

    def delete(self, function_name: str) -> None:
        self._manager.gateway.delete(self._qualified(function_name))

    # -- scoped invocation --------------------------------------------------
    def invoke(self, function_name: str, payload=None, *, on_response=None) -> Invocation:
        return self._manager.gateway.invoke(
            self._qualified(function_name), payload, on_response=on_response
        )

    def _qualified(self, function_name: str) -> str:
        if _SEP in function_name:
            raise NamespaceError(
                f"{function_name!r}: cross-namespace access is not allowed; "
                "use your own namespace's short function names"
            )
        qualified = self.namespace.qualify(function_name)
        try:
            self._manager.gateway.get(qualified)
        except FunctionNotFound:
            raise FunctionNotFound(function_name) from None
        return qualified


class NamespaceManager:
    """Creates namespaces and hands out tenant-scoped views."""

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway
        self._namespaces: dict[str, Namespace] = {}

    def create(self, name: str, *, tenant: str) -> NamespaceView:
        if name in self._namespaces:
            raise ValueError(f"namespace {name!r} already exists")
        ns = Namespace(name=name, tenant=tenant)
        self._namespaces[name] = ns
        self.gateway.system.datastore.client().put(
            f"ns/meta/{name}", {"tenant": tenant}
        )
        # namespace creation is its own control-plane action; the Gateway's
        # helper applies the shared flush-at-action-boundary rule
        self.gateway._flush_writes()
        return NamespaceView(self, ns)

    def view(self, name: str, *, tenant: str) -> NamespaceView:
        """Re-obtain a view; the caller must present the owning tenant."""
        ns = self._namespaces.get(name)
        if ns is None:
            raise KeyError(f"unknown namespace {name!r}")
        if ns.tenant != tenant:
            raise NamespaceError(f"namespace {name!r} does not belong to {tenant!r}")
        return NamespaceView(self, ns)

    def list_namespaces(self) -> list[str]:
        return sorted(self._namespaces)

    def delete(self, name: str, *, tenant: str) -> None:
        """Delete a namespace and every function in it."""
        view = self.view(name, tenant=tenant)
        for fn in view.list_functions():
            view.delete(fn)
        del self._namespaces[name]
        self.gateway.system.datastore.client().delete(f"ns/meta/{name}")
        self.gateway._flush_writes()
