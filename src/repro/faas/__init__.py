"""OpenFaaS-like FaaS framework substrate: Gateway, Watchdog, containers,
autoscaler, and the intercepted ML API for GPU-enabled functions."""

from .autoscaler import Autoscaler
from .container import Container, ContainerPool, ContainerState
from .gateway import FunctionNotFound, Gateway, RegisteredFunction
from .interceptor import GPUModelHandle, InterceptedMLAPI
from .namespaces import Namespace, NamespaceError, NamespaceManager, NamespaceView
from .spec import Dockerfile, FunctionSpec, default_template
from .watchdog import HealthWatchdog, Invocation, InvocationStatus, Watchdog

__all__ = [
    "Autoscaler",
    "Container",
    "ContainerPool",
    "ContainerState",
    "FunctionNotFound",
    "Gateway",
    "RegisteredFunction",
    "GPUModelHandle",
    "InterceptedMLAPI",
    "Namespace",
    "NamespaceError",
    "NamespaceManager",
    "NamespaceView",
    "Dockerfile",
    "FunctionSpec",
    "default_template",
    "Invocation",
    "InvocationStatus",
    "Watchdog",
    "HealthWatchdog",
]
