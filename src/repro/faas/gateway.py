"""The Gateway: the public entry point of the FaaS platform.

§II-A: "The Gateway is the public route that interacts with the end-users
by handling the Create, Read, Update, and Delete (CRUD) operations of
functions and invoking the registered functions."

§III-A adds the GPU path: at registration, the Gateway checks the
GPU-enable flag in the function's Dockerfile and, when set, swaps the
function's ML interface for the intercepted one that redirects model
loading and inference to the GPU Managers through the Scheduler.
"""

from __future__ import annotations

from typing import Any, Callable

from ..datastore.client import DatastoreClient
from ..runtime.system import FaaSCluster
from .container import ContainerPool
from .interceptor import GPUModelHandle, InterceptedMLAPI
from .spec import FunctionSpec
from .watchdog import Invocation, InvocationStatus, Watchdog

__all__ = ["Gateway", "FunctionNotFound", "RegisteredFunction"]


class FunctionNotFound(KeyError):
    """Invoked or managed a function that is not registered."""


class RegisteredFunction:
    """Everything the platform holds for one deployed function."""

    def __init__(
        self,
        spec: FunctionSpec,
        pool: ContainerPool,
        watchdog: Watchdog,
        model_handle: GPUModelHandle | None,
    ) -> None:
        self.spec = spec
        self.pool = pool
        self.watchdog = watchdog
        self.model_handle = model_handle
        self.invocations = 0


class Gateway:
    """Function CRUD + invocation routing."""

    def __init__(self, system: FaaSCluster, *, datastore: DatastoreClient | None = None) -> None:
        self.system = system
        self.sim = system.sim
        self.datastore = datastore if datastore is not None else system.datastore.client()
        self._functions: dict[str, RegisteredFunction] = {}

    # ------------------------------------------------------------------
    # CRUD (§II-A)
    # ------------------------------------------------------------------
    def register(self, spec: FunctionSpec) -> RegisteredFunction:
        """Create: build the function image and start min_replicas."""
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name!r} already registered; use update()")
        if spec.is_inference and not spec.gpu_enabled:
            raise ValueError(
                f"{spec.name}: inference functions must set the GPU-enable flag "
                "in their Dockerfile (ENV GPU_ENABLE=1)"
            )
        model_handle = None
        if spec.gpu_enabled and spec.is_inference:
            # §III-A: replace torch.load/model(input) with the interceptor.
            api = InterceptedMLAPI(self.system, spec.name, tenant=spec.tenant)
            model_handle = api.load(spec.model_architecture, instance_id=f"{spec.name}#model")
        watchdog = Watchdog(
            self.sim, spec, datastore=self.datastore, model_handle=model_handle
        )
        pool = ContainerPool(self.sim, spec)
        pool.build(on_done=lambda: pool.scale_to(spec.min_replicas))
        fn = RegisteredFunction(spec, pool, watchdog, model_handle)
        self._functions[spec.name] = fn
        self._put_meta(spec)
        self._flush_writes()  # registration is a complete control-plane action
        return fn

    def get(self, name: str) -> RegisteredFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise FunctionNotFound(name) from None

    def list_functions(self) -> list[str]:
        return sorted(self._functions)

    def logs(self, name: str, *, tail: int | None = None) -> list[str]:
        """The function's Watchdog log lines (like ``faas-cli logs``)."""
        return self.get(name).watchdog.logs(tail)

    def update(self, spec: FunctionSpec) -> RegisteredFunction:
        """Update: re-register with a new spec (replaces the pool)."""
        if spec.name not in self._functions:
            raise FunctionNotFound(spec.name)
        old = self._functions.pop(spec.name)
        for c in old.pool.containers:
            c.stop()
        self.datastore.delete(f"fn/meta/{spec.name}")
        return self.register(spec)

    def delete(self, name: str) -> None:
        fn = self.get(name)
        for c in fn.pool.containers:
            c.stop()
        del self._functions[name]
        self.datastore.delete(f"fn/meta/{name}")
        self._flush_writes()

    # ------------------------------------------------------------------
    # Invocation (the RESTful entry point)
    # ------------------------------------------------------------------
    def invoke(
        self,
        name: str,
        payload: Any = None,
        *,
        on_response: Callable[[Invocation], None] | None = None,
    ) -> Invocation:
        """Invoke a registered function; the response arrives via callback."""
        fn = self.get(name)
        invocation = Invocation(
            function=name,
            payload=payload,
            submitted_at=self.sim.now,
            on_response=on_response,
        )
        fn.invocations += 1
        self.datastore.put(f"fn/invocations/{name}", fn.invocations)

        if not fn.pool.built:
            # registration build still in flight — queue behind it
            fn.pool.build(on_done=lambda: self._route(fn, invocation))
        else:
            self._route(fn, invocation)
        # one invocation = one action: the counter bump and whatever routing
        # wrote commit together
        self._flush_writes()
        return invocation

    def _route(self, fn: RegisteredFunction, invocation: Invocation) -> None:
        if fn.pool.replica_count() == 0:
            fn.pool.scale_to(max(1, fn.spec.min_replicas))
        fn.pool.acquire(lambda container: fn.watchdog.handle(invocation, container))

    # ------------------------------------------------------------------
    def _flush_writes(self) -> None:
        """Commit this CRUD/invoke action's accumulated Datastore writes.

        Nested inside a simulator event the flush defers to the post-event
        hook, so the enclosing handler still commits as one transaction;
        called from user context it is the action boundary itself.
        """
        if not self.sim.is_running:
            self.datastore.flush()

    def _put_meta(self, spec: FunctionSpec) -> None:
        self.datastore.put(
            f"fn/meta/{spec.name}",
            {
                "name": spec.name,
                "gpu_enabled": spec.gpu_enabled,
                "model": spec.model_architecture,
                "tenant": spec.tenant,
                "min_replicas": spec.min_replicas,
                "max_replicas": spec.max_replicas,
            },
        )


# re-export for convenient assertions in user code
__all__.append("InvocationStatus")
