"""Prometheus-style text exposition of a run's counters and gauges.

:func:`prometheus_exposition` snapshots the metric state a built
:class:`~repro.runtime.system.FaaSCluster` already maintains — the
collector's running counters, the scheduler's pass accounting, the
Datastore's revision, the sim kernel's event counts — into the
Prometheus text exposition format (``# HELP`` / ``# TYPE`` lines,
``metric{label="v"} value`` samples).  Pure rendering: nothing here
adds state or hot-path cost; it reads counters that exist either way.

In streaming-metrics mode the latency :class:`~repro.metrics.histogram.
LogHistogram` is rendered as a Prometheus histogram (cumulative ``le``
buckets over the non-empty log buckets, plus ``_sum`` / ``_count``).
"""

from __future__ import annotations

__all__ = ["prometheus_exposition"]


def _sample(lines: list[str], name: str, value, labels: str = "") -> None:
    if isinstance(value, float):
        lines.append(f"{name}{labels} {value!r}")
    else:
        lines.append(f"{name}{labels} {value}")


def _metric(lines: list[str], name: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def prometheus_exposition(system) -> str:
    """Render the system's counters/gauges as Prometheus text format."""
    lines: list[str] = []
    sim = system.sim
    metrics = system.metrics
    scheduler = system.scheduler

    _metric(lines, "repro_sim_time_seconds", "gauge", "Current simulation time")
    _sample(lines, "repro_sim_time_seconds", float(sim.now))
    stats = sim.kernel_stats()
    _metric(lines, "repro_sim_events_processed_total", "counter",
            "Simulator events fired")
    _sample(lines, "repro_sim_events_processed_total", stats["processed"])
    _metric(lines, "repro_sim_events_pending", "gauge",
            "Live (scheduled, uncancelled) simulator events")
    _sample(lines, "repro_sim_events_pending", stats["pending"])

    _metric(lines, "repro_requests_completed_total", "counter",
            "Requests completed")
    _sample(lines, "repro_requests_completed_total", metrics.completed_count)
    _metric(lines, "repro_requests_lost_total", "counter",
            "Requests dropped without completing, by reason")
    for reason in sorted(metrics.lost_reasons):
        _sample(lines, "repro_requests_lost_total",
                metrics.lost_reasons[reason], f'{{reason="{reason}"}}')
    _metric(lines, "repro_cache_misses_total", "counter",
            "Completions that required a model load")
    _sample(lines, "repro_cache_misses_total", metrics.miss_count)
    _metric(lines, "repro_cache_false_misses_total", "counter",
            "Misses while the model was resident elsewhere (paper Sec. V-D)")
    _sample(lines, "repro_cache_false_misses_total", metrics.false_miss_count)
    _metric(lines, "repro_retries_total", "counter",
            "Failure resubmissions absorbed by finished requests")
    _sample(lines, "repro_retries_total", metrics.retries_total)
    _metric(lines, "repro_cache_events_total", "counter",
            "Cache load/evict/use events observed")
    _sample(lines, "repro_cache_events_total", metrics.cache_events)

    _metric(lines, "repro_faults_injected_total", "counter",
            "Faults that took effect (chaos injector / watchdog)")
    _sample(lines, "repro_faults_injected_total", metrics.faults_injected)
    _metric(lines, "repro_fault_repairs_total", "counter", "Faults healed")
    _sample(lines, "repro_fault_repairs_total", len(metrics.repairs))
    _metric(lines, "repro_fault_mttr_seconds", "gauge",
            "Mean time-to-repair over healed faults")
    _sample(lines, "repro_fault_mttr_seconds", float(metrics.mean_mttr()))

    _metric(lines, "repro_scheduler_actions_total", "counter",
            "Scheduling actions (entry-point invocations)")
    _sample(lines, "repro_scheduler_actions_total", scheduler.actions)
    _metric(lines, "repro_scheduler_passes_total", "counter",
            "Considered scheduling passes, by outcome")
    _sample(lines, "repro_scheduler_passes_total",
            scheduler.passes_executed, '{outcome="executed"}')
    _sample(lines, "repro_scheduler_passes_total",
            scheduler.passes_elided, '{outcome="elided"}')
    _metric(lines, "repro_dispatched_total", "counter", "Requests dispatched")
    _sample(lines, "repro_dispatched_total", scheduler.dispatched_count)
    _metric(lines, "repro_decisions_total", "counter",
            "Scheduling decisions recorded, by kind")
    decisions = scheduler.decisions
    for kind in sorted(decisions._counts, key=lambda k: k.value):
        _sample(lines, "repro_decisions_total",
                decisions._counts[kind], f'{{kind="{kind.value}"}}')

    kv = system.datastore.kv
    _metric(lines, "repro_kv_revision", "gauge", "Datastore MVCC revision")
    _sample(lines, "repro_kv_revision", kv.revision)
    _metric(lines, "repro_kv_live_keys", "gauge", "Live Datastore keys")
    _sample(lines, "repro_kv_live_keys", len(kv))

    tracer = getattr(system, "tracer", None)
    if tracer is not None:
        _metric(lines, "repro_trace_records_total", "counter",
                "Flight-recorder records offered, by ring")
        totals = tracer.totals
        dropped = tracer.dropped
        for ring in sorted(totals):
            _sample(lines, "repro_trace_records_total",
                    totals[ring], f'{{ring="{ring}"}}')
        _metric(lines, "repro_trace_records_dropped_total", "counter",
                "Flight-recorder records overwritten past capacity, by ring")
        for ring in sorted(dropped):
            _sample(lines, "repro_trace_records_dropped_total",
                    dropped[ring], f'{{ring="{ring}"}}')

    if metrics.streaming:
        hist = metrics.lat_hist
        name = "repro_request_latency_seconds"
        _metric(lines, name, "histogram",
                "End-to-end request latency (streaming log-histogram)")
        cumulative = 0
        counts = hist.counts
        for i in range(len(counts)):
            c = int(counts[i])
            if not c:
                continue
            cumulative += c
            le = hist.lo * hist.growth ** (i + 1)
            _sample(lines, f"{name}_bucket", cumulative, f'{{le="{le!r}"}}')
        _sample(lines, f"{name}_bucket", cumulative, '{le="+Inf"}')
        _sample(lines, f"{name}_sum", float(hist.sum))
        _sample(lines, f"{name}_count", hist.count)
    return "\n".join(lines) + "\n"
