"""Metrics collection for experiment runs.

The collector observes two event streams:

* completed requests (from the GPU Managers) — latency, hit/miss,
  false-miss outcomes;
* cache events (from the Cache Manager) — load/evict transitions, from
  which it integrates the *time-weighted* number of GPUs caching each
  model, the quantity behind Fig. 6's "average number of duplicates of the
  top one model".

Storage is **columnar**: every completion appends one row of scalars
(arrival / dispatch / completion stamps, interned model / GPU /
architecture codes, hit and SLA outcomes) to per-column append buffers,
materialized into typed NumPy arrays lazily when read, alongside the
request-object list kept for drill-down.
:mod:`~repro.metrics.summary` reduces those columns with vectorized NumPy
instead of per-request Python loops, and the per-model / miss counters are
maintained *running* on :meth:`MetricsCollector.on_complete`, so queries
like :meth:`most_invoked_model` cost O(models) — never a rescan of the
completed list.

Streaming mode
--------------
Columnar storage is linear in replay size, which turns a 10M-request
replay into an OOM.  ``MetricsCollector(sim, streaming=True)`` keeps
memory **flat**: completed request objects are not retained, and each
completion folds into

* fixed-size :class:`~repro.metrics.histogram.LogHistogram` stores
  (latency overall and per architecture),
* exact running counters (misses, false misses, SLA totals/violations,
  per-model invocations, compensated queueing-delay sum), and
* an *exact window* — compact per-request scalar buffers retained up to
  ``exact_cap`` completions (default 20k, a few hundred KB).  While the
  run fits the window, :func:`~repro.metrics.summary.summarize` reduces
  the very same float64 values with the very same NumPy calls as the
  columnar path, so the summary is **byte-identical**; past the cap the
  window is dropped and quantiles come from the histograms within the
  documented ~1 % relative bound (counts, rates and ratios stay exact).

``spill_to`` optionally tees every completion row to a CSV on disk for
drill-down, since streaming mode keeps none of them in memory.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.request import InferenceRequest
from ..sim import Simulator
from .histogram import LogHistogram

__all__ = ["MetricsCollector", "CompletionColumns", "ExactWindow"]


@dataclass(frozen=True)
class CompletionColumns:
    """Trimmed, read-only views of the collector's completion columns.

    One row per completed request, in completion order.  Codes index the
    collector's ``model_names`` / ``gpu_names`` / ``architectures`` interning
    tables.  ``cache_hit`` is ``1`` hit / ``0`` miss / ``-1`` unknown;
    ``sla_s`` is NaN for best-effort requests.
    """

    arrival: np.ndarray       # float64, seconds
    dispatched: np.ndarray    # float64, seconds
    completed: np.ndarray     # float64, seconds
    model: np.ndarray         # int32 codes
    gpu: np.ndarray           # int32 codes
    architecture: np.ndarray  # int32 codes
    cache_hit: np.ndarray     # int8
    false_miss: np.ndarray    # bool
    sla_s: np.ndarray         # float64, NaN = no SLA

    def __len__(self) -> int:
        return int(self.arrival.shape[0])

    @property
    def latency(self) -> np.ndarray:
        return self.completed - self.arrival

    @property
    def queueing(self) -> np.ndarray:
        return self.dispatched - self.arrival


@dataclass(frozen=True)
class ExactWindow:
    """Typed views of the streaming collector's exact-window buffers.

    Same float64 values, in the same order, as the columnar path's
    derived columns — reducing them with the same NumPy calls reproduces
    the columnar summary bit for bit.
    """

    latency: np.ndarray       # float64, completed - arrival
    queueing: np.ndarray      # float64, dispatched - arrival (NaN if never)
    architecture: np.ndarray  # int32 codes
    cache_hit: np.ndarray     # int8: 1 hit / 0 miss / -1 unknown

    def __len__(self) -> int:
        return int(self.latency.shape[0])


class _ArchStream:
    """Fixed-size per-architecture fold target (streaming breakdown)."""

    __slots__ = ("hist", "misses")

    def __init__(self) -> None:
        self.hist = LogHistogram()
        self.misses = 0


class _RowSpill:
    """Lazily-opened CSV tee of completion rows (streaming drill-down)."""

    __slots__ = ("path", "_fh")

    _HEADER = "arrival,dispatched,completed,model,gpu,architecture,cache_hit,false_miss,sla_s\n"

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = None

    def write(self, request: InferenceRequest) -> None:
        fh = self._fh
        if fh is None:
            fh = self._fh = open(self.path, "w", buffering=1 << 16)
            fh.write(self._HEADER)
        hit = request.cache_hit
        fh.write(
            f"{request.arrival_time!r},"
            f"{'' if request.dispatched_at is None else repr(request.dispatched_at)},"
            f"{request.completed_at!r},"
            f"{request.model_id},{request.gpu_id or '?'},"
            f"{request.model.architecture},"
            f"{-1 if hit is None else int(hit)},"
            f"{int(request.false_miss)},"
            f"{'' if request.sla_s is None else repr(request.sla_s)}\n"
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class _Interner:
    """String → dense int32 code, with the reverse table public."""

    __slots__ = ("codes", "names")

    def __init__(self) -> None:
        self.codes: dict[str, int] = {}
        self.names: list[str] = []

    def code(self, name: str) -> int:
        c = self.codes.get(name)
        if c is None:
            c = len(self.names)
            self.codes[name] = c
            self.names.append(name)
        return c


class MetricsCollector:
    """Accumulates per-request and cache-residency statistics."""

    def __init__(
        self,
        sim: Simulator,
        *,
        streaming: bool = False,
        exact_cap: int = 20_000,
        spill_to: str | None = None,
    ) -> None:
        self.sim = sim
        self.completed: list[InferenceRequest] = []
        self.started_at = sim.now
        # duplicates tracking: current residency count and its time integral
        self._dup_count: dict[str, int] = defaultdict(int)
        self._dup_integral: dict[str, float] = defaultdict(float)
        self._dup_since: dict[str, float] = {}
        self._dup_peak: dict[str, int] = defaultdict(int)
        self.cache_events: int = 0
        # running per-completion counters (no rescans of `completed`)
        self.miss_count = 0
        self.false_miss_count = 0
        self._invocations: dict[str, int] = {}  # model_id -> completions
        # availability accounting (chaos/robustness): lost requests,
        # failure-retry totals, and open-fault → repair-time tracking
        self.lost: list[InferenceRequest] = []
        self.lost_reasons: dict[str, int] = {}
        self.retries_total = 0
        self.faults_injected = 0
        self._open_faults: dict[tuple[str, str], float] = {}
        #: optional flight recorder (installed by the runtime when tracing
        #: is on); None keeps every hook to one identity test
        self.tracer = None
        #: (fault kind, target, repair seconds) per healed fault
        self.repairs: list[tuple[str, str, float]] = []
        # columnar completion buffers: plain Python lists on the append
        # path (a NumPy scalar store costs several times a list append,
        # and this runs once per completion), materialized into typed
        # arrays lazily — and cached — when the columns are read
        self._models = _Interner()
        self._gpus = _Interner()
        self._archs = _Interner()
        self._n = 0
        #: one 9-field row tuple per completion (a single append beats
        #: nine per-column appends on the completion path); split into
        #: typed arrays lazily by columns()
        self._rows: list[tuple] = []
        self._columns_cache: CompletionColumns | None = None
        # --- streaming (flat-memory) mode state --------------------------
        self.streaming = streaming
        self.exact_cap = int(exact_cap)
        self._spill = _RowSpill(spill_to) if spill_to else None
        self._lost_streamed = 0
        if streaming:
            self.lat_hist = LogHistogram()
            self._arch_stats: dict[int, _ArchStream] = {}
            # exact-window append buffers; dropped (set to None) past cap
            self._w_lat: list[float] | None = []
            self._w_queue: list[float] | None = []
            self._w_arch: list[int] | None = []
            self._w_hit: list[int] | None = []
            self._window_cache: ExactWindow | None = None
            # exact running aggregates (valid in both regimes)
            self.sla_total = 0
            self.sla_violations = 0
            self._queue_sum = 0.0
            self._queue_sum_c = 0.0

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def on_complete(self, request: InferenceRequest) -> None:
        if self.streaming:
            self._on_complete_streaming(request)
            return
        if request.completed_at is None:
            raise ValueError(f"request {request.request_id} has not completed")
        self.completed.append(request)
        if request.retries:
            self.retries_total += request.retries
        model_id = request.model_id
        self._invocations[model_id] = self._invocations.get(model_id, 0) + 1
        hit = request.cache_hit
        if hit is False:
            self.miss_count += 1
        if request.false_miss:
            self.false_miss_count += 1
        self._rows.append((
            request.arrival_time,
            request.dispatched_at if request.dispatched_at is not None else np.nan,
            request.completed_at,
            self._models.code(model_id),
            self._gpus.code(request.gpu_id or "?"),
            self._archs.code(request.model.architecture),
            -1 if hit is None else (1 if hit else 0),
            request.false_miss,
            request.sla_s if request.sla_s is not None else np.nan,
        ))
        self._n += 1

    def _on_complete_streaming(self, request: InferenceRequest) -> None:
        """Fold one completion into fixed-size state; retain nothing.

        The scalar derivations (``completed - arrival`` etc.) are the same
        IEEE float64 operations the columnar path performs elementwise, so
        the exact window holds bit-identical values.
        """
        completed = request.completed_at
        if completed is None:
            raise ValueError(f"request {request.request_id} has not completed")
        if request.retries:
            self.retries_total += request.retries
        model_id = request.model_id
        self._invocations[model_id] = self._invocations.get(model_id, 0) + 1
        hit = request.cache_hit
        if hit is False:
            self.miss_count += 1
        if request.false_miss:
            self.false_miss_count += 1
        arrival = request.arrival_time
        lat = completed - arrival
        dispatched = request.dispatched_at
        queue = (dispatched - arrival) if dispatched is not None else float("nan")
        arch = self._archs.code(request.model.architecture)
        sla = request.sla_s
        self._n += 1
        # exact running aggregates
        if sla is not None:
            self.sla_total += 1
            if lat > sla:
                self.sla_violations += 1
        s = self._queue_sum
        t = s + queue
        self._queue_sum_c += (s - t) + queue if abs(s) >= abs(queue) else (queue - t) + s
        self._queue_sum = t
        # histogram folds (both regimes; take over past the window)
        self.lat_hist.record(lat)
        stats = self._arch_stats.get(arch)
        if stats is None:
            stats = self._arch_stats[arch] = _ArchStream()
        stats.hist.record(lat)
        if hit is False:
            stats.misses += 1
        # exact window, dropped once the run outgrows it
        w_lat = self._w_lat
        if w_lat is not None:
            if self._n <= self.exact_cap:
                w_lat.append(lat)
                self._w_queue.append(queue)
                self._w_arch.append(arch)
                self._w_hit.append(-1 if hit is None else (1 if hit else 0))
            else:
                self._w_lat = self._w_queue = self._w_arch = self._w_hit = None
                self._window_cache = None
        if self._spill is not None:
            self._spill.write(request)

    def exact_window(self) -> ExactWindow | None:
        """Typed views of the exact window, or ``None`` once outgrown.

        Streaming mode only.  Cached until the next completion, like
        :meth:`columns`.
        """
        if not self.streaming:
            raise RuntimeError("exact_window() is only meaningful in streaming mode")
        if self._w_lat is None:
            return None
        cached = self._window_cache
        if cached is not None and len(cached) == self._n:
            return cached
        window = ExactWindow(
            latency=np.asarray(self._w_lat, dtype=np.float64),
            queueing=np.asarray(self._w_queue, dtype=np.float64),
            architecture=np.asarray(self._w_arch, dtype=np.int32),
            cache_hit=np.asarray(self._w_hit, dtype=np.int8),
        )
        self._window_cache = window
        return window

    @property
    def queueing_sum(self) -> float:
        """Compensated running sum of queueing delays (streaming mode)."""
        return self._queue_sum + self._queue_sum_c

    def close_spill(self) -> None:
        """Flush and close the row-spill CSV, if one was configured."""
        if self._spill is not None:
            self._spill.close()

    @property
    def spill_path(self) -> str | None:
        return self._spill.path if self._spill is not None else None

    def on_cache_event(self, kind: str, gpu_id: str, model_id: str, now: float) -> None:
        self.cache_events += 1
        if kind == "load":
            self._advance(model_id, now)
            self._dup_count[model_id] += 1
            self._dup_peak[model_id] = max(self._dup_peak[model_id], self._dup_count[model_id])
        elif kind == "evict":
            self._advance(model_id, now)
            self._dup_count[model_id] -= 1
            if self._dup_count[model_id] < 0:
                raise RuntimeError(f"negative residency for {model_id}")
        # "use" events do not change residency

    def on_lost(self, request: InferenceRequest, reason: str) -> None:
        """A request left the system without completing (deadline timeout
        or exhausted retry budget)."""
        if self.streaming:
            self._lost_streamed += 1
        else:
            self.lost.append(request)
        self.lost_reasons[reason] = self.lost_reasons.get(reason, 0) + 1
        if request.retries:
            self.retries_total += request.retries
        if self.tracer is not None:
            self.tracer.lost(reason, request.request_id)

    def on_fault(self, kind: str, target: str = "") -> None:
        """A fault took effect (chaos injector / health watchdog)."""
        self.faults_injected += 1
        self._open_faults[(kind, target)] = self.sim.now
        if self.tracer is not None:
            self.tracer.fault(kind, target)

    def on_fault_cleared(self, kind: str, target: str = "") -> None:
        """A fault healed; closes the matching open fault for MTTR."""
        start = self._open_faults.pop((kind, target), None)
        if start is not None:
            self.repairs.append((kind, target, self.sim.now - start))
        if self.tracer is not None:
            self.tracer.fault_cleared(kind, target)

    @property
    def lost_count(self) -> int:
        return self._lost_streamed if self.streaming else len(self.lost)

    def mean_mttr(self) -> float:
        """Mean time-to-repair over every healed fault (0.0 if none)."""
        if not self.repairs:
            return 0.0
        return sum(t for _, _, t in self.repairs) / len(self.repairs)

    def mttr_by_kind(self) -> dict[str, float]:
        """Per-fault-kind mean time-to-repair (healed faults only)."""
        sums: dict[str, list[float]] = {}
        for kind, _, t in self.repairs:
            sums.setdefault(kind, []).append(t)
        return {kind: sum(ts) / len(ts) for kind, ts in sorted(sums.items())}

    def _advance(self, model_id: str, now: float) -> None:
        since = self._dup_since.get(model_id, self.started_at)
        self._dup_integral[model_id] += self._dup_count[model_id] * (now - since)
        self._dup_since[model_id] = now

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        """Completions so far (O(1); what the timeline sampler polls)."""
        return self._n

    @property
    def model_names(self) -> list[str]:
        return self._models.names

    @property
    def gpu_names(self) -> list[str]:
        return self._gpus.names

    @property
    def architectures(self) -> list[str]:
        return self._archs.names

    def columns(self) -> CompletionColumns:
        """Typed array views of the completion columns.

        Materialized from the append buffers on demand and cached until
        the next completion, so the several summarize/breakdown consumers
        of one finished run convert each column exactly once.
        """
        if self.streaming:
            raise RuntimeError(
                "streaming collector keeps no per-request columns; "
                "use exact_window() / lat_hist instead"
            )
        cached = self._columns_cache
        if cached is not None and len(cached) == self._n:
            return cached
        if self._rows:
            (arrival, dispatched, completed, model, gpu, arch,
             cache_hit, false_miss, sla) = zip(*self._rows)
        else:
            arrival = dispatched = completed = model = gpu = arch = ()
            cache_hit = false_miss = sla = ()
        cols = CompletionColumns(
            arrival=np.asarray(arrival, dtype=np.float64),
            dispatched=np.asarray(dispatched, dtype=np.float64),
            completed=np.asarray(completed, dtype=np.float64),
            model=np.asarray(model, dtype=np.int32),
            gpu=np.asarray(gpu, dtype=np.int32),
            architecture=np.asarray(arch, dtype=np.int32),
            cache_hit=np.asarray(cache_hit, dtype=np.int8),
            false_miss=np.asarray(false_miss, dtype=bool),
            sla_s=np.asarray(sla, dtype=np.float64),
        )
        self._columns_cache = cols
        return cols

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def average_duplicates(self, model_id: str, horizon: float | None = None) -> float:
        """Time-averaged number of GPUs caching ``model_id`` (Fig. 6)."""
        end = horizon if horizon is not None else self.sim.now
        duration = end - self.started_at
        if duration <= 0:
            return 0.0
        since = self._dup_since.get(model_id, self.started_at)
        integral = self._dup_integral.get(model_id, 0.0)
        integral += self._dup_count.get(model_id, 0) * (end - since)
        return integral / duration

    def peak_duplicates(self, model_id: str) -> int:
        return self._dup_peak.get(model_id, 0)

    def current_duplicates(self, model_id: str) -> int:
        return self._dup_count.get(model_id, 0)

    def invocations(self, model_id: str) -> int:
        """Completed invocations of one model (running counter, O(1))."""
        return self._invocations.get(model_id, 0)

    def most_invoked_model(self) -> str | None:
        """Model instance with the most completed invocations (the "top one
        model" of Fig. 6).

        O(models) off the running counters — the seed walked the whole
        completed list on every call.  Ties break to the lexicographically
        smallest model id, exactly as the rescan did.
        """
        if not self._invocations:
            return None
        counts = self._invocations
        return max(sorted(counts), key=lambda m: counts[m])
