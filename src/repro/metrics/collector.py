"""Metrics collection for experiment runs.

The collector observes two event streams:

* completed requests (from the GPU Managers) — latency, hit/miss,
  false-miss outcomes;
* cache events (from the Cache Manager) — load/evict transitions, from
  which it integrates the *time-weighted* number of GPUs caching each
  model, the quantity behind Fig. 6's "average number of duplicates of the
  top one model".

Storage is **columnar**: every completion appends one row of scalars
(arrival / dispatch / completion stamps, interned model / GPU /
architecture codes, hit and SLA outcomes) to typed NumPy buffers grown
geometrically, alongside the request-object list kept for drill-down.
:mod:`~repro.metrics.summary` reduces those columns with vectorized NumPy
instead of per-request Python loops, and the per-model / miss counters are
maintained *running* on :meth:`MetricsCollector.on_complete`, so queries
like :meth:`most_invoked_model` cost O(models) — never a rescan of the
completed list.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.request import InferenceRequest
from ..sim import Simulator

__all__ = ["MetricsCollector", "CompletionColumns"]


@dataclass(frozen=True)
class CompletionColumns:
    """Trimmed, read-only views of the collector's completion columns.

    One row per completed request, in completion order.  Codes index the
    collector's ``model_names`` / ``gpu_names`` / ``architectures`` interning
    tables.  ``cache_hit`` is ``1`` hit / ``0`` miss / ``-1`` unknown;
    ``sla_s`` is NaN for best-effort requests.
    """

    arrival: np.ndarray       # float64, seconds
    dispatched: np.ndarray    # float64, seconds
    completed: np.ndarray     # float64, seconds
    model: np.ndarray         # int32 codes
    gpu: np.ndarray           # int32 codes
    architecture: np.ndarray  # int32 codes
    cache_hit: np.ndarray     # int8
    false_miss: np.ndarray    # bool
    sla_s: np.ndarray         # float64, NaN = no SLA

    def __len__(self) -> int:
        return int(self.arrival.shape[0])

    @property
    def latency(self) -> np.ndarray:
        return self.completed - self.arrival

    @property
    def queueing(self) -> np.ndarray:
        return self.dispatched - self.arrival


class _Interner:
    """String → dense int32 code, with the reverse table public."""

    __slots__ = ("codes", "names")

    def __init__(self) -> None:
        self.codes: dict[str, int] = {}
        self.names: list[str] = []

    def code(self, name: str) -> int:
        c = self.codes.get(name)
        if c is None:
            c = len(self.names)
            self.codes[name] = c
            self.names.append(name)
        return c


_INITIAL_CAPACITY = 1024


class MetricsCollector:
    """Accumulates per-request and cache-residency statistics."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.completed: list[InferenceRequest] = []
        self.started_at = sim.now
        # duplicates tracking: current residency count and its time integral
        self._dup_count: dict[str, int] = defaultdict(int)
        self._dup_integral: dict[str, float] = defaultdict(float)
        self._dup_since: dict[str, float] = {}
        self._dup_peak: dict[str, int] = defaultdict(int)
        self.cache_events: int = 0
        # running per-completion counters (no rescans of `completed`)
        self.miss_count = 0
        self.false_miss_count = 0
        self._invocations: dict[str, int] = {}  # model_id -> completions
        # columnar completion buffers, grown geometrically
        self._models = _Interner()
        self._gpus = _Interner()
        self._archs = _Interner()
        self._n = 0
        self._capacity = _INITIAL_CAPACITY
        self._arrival = np.empty(self._capacity, dtype=np.float64)
        self._dispatched = np.empty(self._capacity, dtype=np.float64)
        self._completed_at = np.empty(self._capacity, dtype=np.float64)
        self._model_code = np.empty(self._capacity, dtype=np.int32)
        self._gpu_code = np.empty(self._capacity, dtype=np.int32)
        self._arch_code = np.empty(self._capacity, dtype=np.int32)
        self._cache_hit = np.empty(self._capacity, dtype=np.int8)
        self._false_miss = np.empty(self._capacity, dtype=bool)
        self._sla = np.empty(self._capacity, dtype=np.float64)

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def on_complete(self, request: InferenceRequest) -> None:
        if request.completed_at is None:
            raise ValueError(f"request {request.request_id} has not completed")
        self.completed.append(request)
        model_id = request.model_id
        self._invocations[model_id] = self._invocations.get(model_id, 0) + 1
        hit = request.cache_hit
        if hit is False:
            self.miss_count += 1
        if request.false_miss:
            self.false_miss_count += 1
        i = self._n
        if i == self._capacity:
            self._grow()
        self._arrival[i] = request.arrival_time
        self._dispatched[i] = (
            request.dispatched_at if request.dispatched_at is not None else np.nan
        )
        self._completed_at[i] = request.completed_at
        self._model_code[i] = self._models.code(model_id)
        self._gpu_code[i] = self._gpus.code(request.gpu_id or "?")
        self._arch_code[i] = self._archs.code(request.model.architecture)
        self._cache_hit[i] = -1 if hit is None else (1 if hit else 0)
        self._false_miss[i] = request.false_miss
        self._sla[i] = request.sla_s if request.sla_s is not None else np.nan
        self._n = i + 1

    def _grow(self) -> None:
        self._capacity *= 2
        for name in (
            "_arrival", "_dispatched", "_completed_at", "_model_code",
            "_gpu_code", "_arch_code", "_cache_hit", "_false_miss", "_sla",
        ):
            old = getattr(self, name)
            new = np.empty(self._capacity, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    def on_cache_event(self, kind: str, gpu_id: str, model_id: str, now: float) -> None:
        self.cache_events += 1
        if kind == "load":
            self._advance(model_id, now)
            self._dup_count[model_id] += 1
            self._dup_peak[model_id] = max(self._dup_peak[model_id], self._dup_count[model_id])
        elif kind == "evict":
            self._advance(model_id, now)
            self._dup_count[model_id] -= 1
            if self._dup_count[model_id] < 0:
                raise RuntimeError(f"negative residency for {model_id}")
        # "use" events do not change residency

    def _advance(self, model_id: str, now: float) -> None:
        since = self._dup_since.get(model_id, self.started_at)
        self._dup_integral[model_id] += self._dup_count[model_id] * (now - since)
        self._dup_since[model_id] = now

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        """Completions so far (O(1); what the timeline sampler polls)."""
        return self._n

    @property
    def model_names(self) -> list[str]:
        return self._models.names

    @property
    def gpu_names(self) -> list[str]:
        return self._gpus.names

    @property
    def architectures(self) -> list[str]:
        return self._archs.names

    def columns(self) -> CompletionColumns:
        """Read-only views of the completion columns (zero-copy trims)."""
        n = self._n
        return CompletionColumns(
            arrival=self._arrival[:n],
            dispatched=self._dispatched[:n],
            completed=self._completed_at[:n],
            model=self._model_code[:n],
            gpu=self._gpu_code[:n],
            architecture=self._arch_code[:n],
            cache_hit=self._cache_hit[:n],
            false_miss=self._false_miss[:n],
            sla_s=self._sla[:n],
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def average_duplicates(self, model_id: str, horizon: float | None = None) -> float:
        """Time-averaged number of GPUs caching ``model_id`` (Fig. 6)."""
        end = horizon if horizon is not None else self.sim.now
        duration = end - self.started_at
        if duration <= 0:
            return 0.0
        since = self._dup_since.get(model_id, self.started_at)
        integral = self._dup_integral.get(model_id, 0.0)
        integral += self._dup_count.get(model_id, 0) * (end - since)
        return integral / duration

    def peak_duplicates(self, model_id: str) -> int:
        return self._dup_peak.get(model_id, 0)

    def current_duplicates(self, model_id: str) -> int:
        return self._dup_count.get(model_id, 0)

    def invocations(self, model_id: str) -> int:
        """Completed invocations of one model (running counter, O(1))."""
        return self._invocations.get(model_id, 0)

    def most_invoked_model(self) -> str | None:
        """Model instance with the most completed invocations (the "top one
        model" of Fig. 6).

        O(models) off the running counters — the seed walked the whole
        completed list on every call.  Ties break to the lexicographically
        smallest model id, exactly as the rescan did.
        """
        if not self._invocations:
            return None
        counts = self._invocations
        return max(sorted(counts), key=lambda m: counts[m])
