"""Metrics collection for experiment runs.

The collector observes two event streams:

* completed requests (from the GPU Managers) — latency, hit/miss,
  false-miss outcomes;
* cache events (from the Cache Manager) — load/evict transitions, from
  which it integrates the *time-weighted* number of GPUs caching each
  model, the quantity behind Fig. 6's "average number of duplicates of the
  top one model".
"""

from __future__ import annotations

from collections import defaultdict

from ..core.request import InferenceRequest
from ..sim import Simulator

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates per-request and cache-residency statistics."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.completed: list[InferenceRequest] = []
        self.started_at = sim.now
        # duplicates tracking: current residency count and its time integral
        self._dup_count: dict[str, int] = defaultdict(int)
        self._dup_integral: dict[str, float] = defaultdict(float)
        self._dup_since: dict[str, float] = {}
        self._dup_peak: dict[str, int] = defaultdict(int)
        self.cache_events: int = 0

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def on_complete(self, request: InferenceRequest) -> None:
        if request.completed_at is None:
            raise ValueError(f"request {request.request_id} has not completed")
        self.completed.append(request)

    def on_cache_event(self, kind: str, gpu_id: str, model_id: str, now: float) -> None:
        self.cache_events += 1
        if kind == "load":
            self._advance(model_id, now)
            self._dup_count[model_id] += 1
            self._dup_peak[model_id] = max(self._dup_peak[model_id], self._dup_count[model_id])
        elif kind == "evict":
            self._advance(model_id, now)
            self._dup_count[model_id] -= 1
            if self._dup_count[model_id] < 0:
                raise RuntimeError(f"negative residency for {model_id}")
        # "use" events do not change residency

    def _advance(self, model_id: str, now: float) -> None:
        since = self._dup_since.get(model_id, self.started_at)
        self._dup_integral[model_id] += self._dup_count[model_id] * (now - since)
        self._dup_since[model_id] = now

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def average_duplicates(self, model_id: str, horizon: float | None = None) -> float:
        """Time-averaged number of GPUs caching ``model_id`` (Fig. 6)."""
        end = horizon if horizon is not None else self.sim.now
        duration = end - self.started_at
        if duration <= 0:
            return 0.0
        since = self._dup_since.get(model_id, self.started_at)
        integral = self._dup_integral.get(model_id, 0.0)
        integral += self._dup_count.get(model_id, 0) * (end - since)
        return integral / duration

    def peak_duplicates(self, model_id: str) -> int:
        return self._dup_peak.get(model_id, 0)

    def current_duplicates(self, model_id: str) -> int:
        return self._dup_count.get(model_id, 0)

    def most_invoked_model(self) -> str | None:
        """Model instance with the most completed invocations (the "top one
        model" of Fig. 6)."""
        counts: dict[str, int] = defaultdict(int)
        for req in self.completed:
            counts[req.model_id] += 1
        if not counts:
            return None
        return max(sorted(counts), key=lambda m: counts[m])
