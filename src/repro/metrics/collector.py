"""Metrics collection for experiment runs.

The collector observes two event streams:

* completed requests (from the GPU Managers) — latency, hit/miss,
  false-miss outcomes;
* cache events (from the Cache Manager) — load/evict transitions, from
  which it integrates the *time-weighted* number of GPUs caching each
  model, the quantity behind Fig. 6's "average number of duplicates of the
  top one model".

Storage is **columnar**: every completion appends one row of scalars
(arrival / dispatch / completion stamps, interned model / GPU /
architecture codes, hit and SLA outcomes) to per-column append buffers,
materialized into typed NumPy arrays lazily when read, alongside the
request-object list kept for drill-down.
:mod:`~repro.metrics.summary` reduces those columns with vectorized NumPy
instead of per-request Python loops, and the per-model / miss counters are
maintained *running* on :meth:`MetricsCollector.on_complete`, so queries
like :meth:`most_invoked_model` cost O(models) — never a rescan of the
completed list.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.request import InferenceRequest
from ..sim import Simulator

__all__ = ["MetricsCollector", "CompletionColumns"]


@dataclass(frozen=True)
class CompletionColumns:
    """Trimmed, read-only views of the collector's completion columns.

    One row per completed request, in completion order.  Codes index the
    collector's ``model_names`` / ``gpu_names`` / ``architectures`` interning
    tables.  ``cache_hit`` is ``1`` hit / ``0`` miss / ``-1`` unknown;
    ``sla_s`` is NaN for best-effort requests.
    """

    arrival: np.ndarray       # float64, seconds
    dispatched: np.ndarray    # float64, seconds
    completed: np.ndarray     # float64, seconds
    model: np.ndarray         # int32 codes
    gpu: np.ndarray           # int32 codes
    architecture: np.ndarray  # int32 codes
    cache_hit: np.ndarray     # int8
    false_miss: np.ndarray    # bool
    sla_s: np.ndarray         # float64, NaN = no SLA

    def __len__(self) -> int:
        return int(self.arrival.shape[0])

    @property
    def latency(self) -> np.ndarray:
        return self.completed - self.arrival

    @property
    def queueing(self) -> np.ndarray:
        return self.dispatched - self.arrival


class _Interner:
    """String → dense int32 code, with the reverse table public."""

    __slots__ = ("codes", "names")

    def __init__(self) -> None:
        self.codes: dict[str, int] = {}
        self.names: list[str] = []

    def code(self, name: str) -> int:
        c = self.codes.get(name)
        if c is None:
            c = len(self.names)
            self.codes[name] = c
            self.names.append(name)
        return c


class MetricsCollector:
    """Accumulates per-request and cache-residency statistics."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.completed: list[InferenceRequest] = []
        self.started_at = sim.now
        # duplicates tracking: current residency count and its time integral
        self._dup_count: dict[str, int] = defaultdict(int)
        self._dup_integral: dict[str, float] = defaultdict(float)
        self._dup_since: dict[str, float] = {}
        self._dup_peak: dict[str, int] = defaultdict(int)
        self.cache_events: int = 0
        # running per-completion counters (no rescans of `completed`)
        self.miss_count = 0
        self.false_miss_count = 0
        self._invocations: dict[str, int] = {}  # model_id -> completions
        # availability accounting (chaos/robustness): lost requests,
        # failure-retry totals, and open-fault → repair-time tracking
        self.lost: list[InferenceRequest] = []
        self.lost_reasons: dict[str, int] = {}
        self.retries_total = 0
        self.faults_injected = 0
        self._open_faults: dict[tuple[str, str], float] = {}
        #: (fault kind, target, repair seconds) per healed fault
        self.repairs: list[tuple[str, str, float]] = []
        # columnar completion buffers: plain Python lists on the append
        # path (a NumPy scalar store costs several times a list append,
        # and this runs once per completion), materialized into typed
        # arrays lazily — and cached — when the columns are read
        self._models = _Interner()
        self._gpus = _Interner()
        self._archs = _Interner()
        self._n = 0
        #: one 9-field row tuple per completion (a single append beats
        #: nine per-column appends on the completion path); split into
        #: typed arrays lazily by columns()
        self._rows: list[tuple] = []
        self._columns_cache: CompletionColumns | None = None

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def on_complete(self, request: InferenceRequest) -> None:
        if request.completed_at is None:
            raise ValueError(f"request {request.request_id} has not completed")
        self.completed.append(request)
        if request.retries:
            self.retries_total += request.retries
        model_id = request.model_id
        self._invocations[model_id] = self._invocations.get(model_id, 0) + 1
        hit = request.cache_hit
        if hit is False:
            self.miss_count += 1
        if request.false_miss:
            self.false_miss_count += 1
        self._rows.append((
            request.arrival_time,
            request.dispatched_at if request.dispatched_at is not None else np.nan,
            request.completed_at,
            self._models.code(model_id),
            self._gpus.code(request.gpu_id or "?"),
            self._archs.code(request.model.architecture),
            -1 if hit is None else (1 if hit else 0),
            request.false_miss,
            request.sla_s if request.sla_s is not None else np.nan,
        ))
        self._n += 1

    def on_cache_event(self, kind: str, gpu_id: str, model_id: str, now: float) -> None:
        self.cache_events += 1
        if kind == "load":
            self._advance(model_id, now)
            self._dup_count[model_id] += 1
            self._dup_peak[model_id] = max(self._dup_peak[model_id], self._dup_count[model_id])
        elif kind == "evict":
            self._advance(model_id, now)
            self._dup_count[model_id] -= 1
            if self._dup_count[model_id] < 0:
                raise RuntimeError(f"negative residency for {model_id}")
        # "use" events do not change residency

    def on_lost(self, request: InferenceRequest, reason: str) -> None:
        """A request left the system without completing (deadline timeout
        or exhausted retry budget)."""
        self.lost.append(request)
        self.lost_reasons[reason] = self.lost_reasons.get(reason, 0) + 1
        if request.retries:
            self.retries_total += request.retries

    def on_fault(self, kind: str, target: str = "") -> None:
        """A fault took effect (chaos injector / health watchdog)."""
        self.faults_injected += 1
        self._open_faults[(kind, target)] = self.sim.now

    def on_fault_cleared(self, kind: str, target: str = "") -> None:
        """A fault healed; closes the matching open fault for MTTR."""
        start = self._open_faults.pop((kind, target), None)
        if start is not None:
            self.repairs.append((kind, target, self.sim.now - start))

    @property
    def lost_count(self) -> int:
        return len(self.lost)

    def mean_mttr(self) -> float:
        """Mean time-to-repair over every healed fault (0.0 if none)."""
        if not self.repairs:
            return 0.0
        return sum(t for _, _, t in self.repairs) / len(self.repairs)

    def mttr_by_kind(self) -> dict[str, float]:
        """Per-fault-kind mean time-to-repair (healed faults only)."""
        sums: dict[str, list[float]] = {}
        for kind, _, t in self.repairs:
            sums.setdefault(kind, []).append(t)
        return {kind: sum(ts) / len(ts) for kind, ts in sorted(sums.items())}

    def _advance(self, model_id: str, now: float) -> None:
        since = self._dup_since.get(model_id, self.started_at)
        self._dup_integral[model_id] += self._dup_count[model_id] * (now - since)
        self._dup_since[model_id] = now

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        """Completions so far (O(1); what the timeline sampler polls)."""
        return self._n

    @property
    def model_names(self) -> list[str]:
        return self._models.names

    @property
    def gpu_names(self) -> list[str]:
        return self._gpus.names

    @property
    def architectures(self) -> list[str]:
        return self._archs.names

    def columns(self) -> CompletionColumns:
        """Typed array views of the completion columns.

        Materialized from the append buffers on demand and cached until
        the next completion, so the several summarize/breakdown consumers
        of one finished run convert each column exactly once.
        """
        cached = self._columns_cache
        if cached is not None and len(cached) == self._n:
            return cached
        if self._rows:
            (arrival, dispatched, completed, model, gpu, arch,
             cache_hit, false_miss, sla) = zip(*self._rows)
        else:
            arrival = dispatched = completed = model = gpu = arch = ()
            cache_hit = false_miss = sla = ()
        cols = CompletionColumns(
            arrival=np.asarray(arrival, dtype=np.float64),
            dispatched=np.asarray(dispatched, dtype=np.float64),
            completed=np.asarray(completed, dtype=np.float64),
            model=np.asarray(model, dtype=np.int32),
            gpu=np.asarray(gpu, dtype=np.int32),
            architecture=np.asarray(arch, dtype=np.int32),
            cache_hit=np.asarray(cache_hit, dtype=np.int8),
            false_miss=np.asarray(false_miss, dtype=bool),
            sla_s=np.asarray(sla, dtype=np.float64),
        )
        self._columns_cache = cols
        return cols

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def average_duplicates(self, model_id: str, horizon: float | None = None) -> float:
        """Time-averaged number of GPUs caching ``model_id`` (Fig. 6)."""
        end = horizon if horizon is not None else self.sim.now
        duration = end - self.started_at
        if duration <= 0:
            return 0.0
        since = self._dup_since.get(model_id, self.started_at)
        integral = self._dup_integral.get(model_id, 0.0)
        integral += self._dup_count.get(model_id, 0) * (end - since)
        return integral / duration

    def peak_duplicates(self, model_id: str) -> int:
        return self._dup_peak.get(model_id, 0)

    def current_duplicates(self, model_id: str) -> int:
        return self._dup_count.get(model_id, 0)

    def invocations(self, model_id: str) -> int:
        """Completed invocations of one model (running counter, O(1))."""
        return self._invocations.get(model_id, 0)

    def most_invoked_model(self) -> str | None:
        """Model instance with the most completed invocations (the "top one
        model" of Fig. 6).

        O(models) off the running counters — the seed walked the whole
        completed list on every call.  Ties break to the lexicographically
        smallest model id, exactly as the rescan did.
        """
        if not self._invocations:
            return None
        counts = self._invocations
        return max(sorted(counts), key=lambda m: counts[m])
