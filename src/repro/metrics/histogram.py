"""Fixed-size log-bucketed histograms for streaming metrics.

The columnar :class:`~repro.metrics.collector.MetricsCollector` keeps one
row per completion, which makes memory linear in replay size — fine at
100k requests, an OOM at 10M.  :class:`LogHistogram` is the fold target
for the streaming mode: per-request latency samples land in a **fixed**
array of log-spaced buckets (the HdrHistogram shape), alongside running
compensated sums, so a million-request replay carries the same few
kilobytes of metric state as a two-thousand-request one.

Accuracy contract
-----------------
* ``count`` / ``min`` / ``max`` are exact.
* ``sum`` (and therefore ``mean``) uses Neumaier-compensated summation:
  exact to the last float64 rounding of the true sum — in practice it
  matches NumPy's pairwise ``mean`` to ~1 ulp, and the streaming
  collector only relies on it *above* its exact-buffer cap (below the
  cap, summaries come from the retained sample buffer and are
  byte-identical to the columnar path).
* ``variance`` derives from the compensated sum of squares; same regime.
* ``quantile`` reports the **geometric midpoint** of the bucket holding
  the q-th sample.  With bucket boundaries growing by ``growth`` per
  bucket, every sample in a bucket is within a factor ``sqrt(growth)``
  of the midpoint, so the *relative* quantile error is bounded by
  ``sqrt(growth) - 1`` — **≈ 1.0 %** at the default ``growth = 1.02``.
  Samples below ``lo`` clamp into the first bucket (absolute error
  ≤ ``lo``, default 1 µs); samples at or above ``hi`` clamp into the
  last.  Both clamps leave sums/min/max exact.

The default range [1 µs, 100 000 s] at 2 % bucket growth needs
⌈ln(1e11)/ln(1.02)⌉ = 1280 buckets — 10 KB of int64 per histogram,
regardless of how many samples fold in.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["LogHistogram", "DEFAULT_GROWTH", "quantile_error_bound"]

#: default per-bucket boundary growth factor (2 % wide buckets)
DEFAULT_GROWTH = 1.02


def quantile_error_bound(growth: float = DEFAULT_GROWTH) -> float:
    """Worst-case relative quantile error for a given bucket growth.

    A bucket spans ``[b, b * growth)``; reporting its geometric midpoint
    ``b * sqrt(growth)`` puts every in-range sample within a factor
    ``sqrt(growth)`` of the reported value.

    >>> round(quantile_error_bound(1.02), 4)
    0.01
    """
    return round(math.sqrt(growth) - 1.0, 10)


class LogHistogram:
    """Streaming histogram over positive float samples, fixed memory.

    >>> h = LogHistogram()
    >>> for v in (0.5, 1.0, 2.0, 4.0):
    ...     h.record(v)
    >>> h.count, round(h.mean(), 10), h.min, h.max
    (4, 1.875, 0.5, 4.0)
    >>> abs(h.quantile(0.5) / 1.0 - 1.0) <= h.relative_error
    True
    """

    __slots__ = (
        "lo", "hi", "growth", "counts", "count",
        "min", "max", "_sum", "_sum_c", "_sum_sq", "_sum_sq_c",
        "_log_lo", "_inv_log_growth", "_n_buckets", "_sqrt_growth",
    )

    def __init__(
        self, lo: float = 1e-6, hi: float = 1e5, growth: float = DEFAULT_GROWTH
    ) -> None:
        if not 0 < lo < hi:
            raise ValueError("need 0 < lo < hi")
        if growth <= 1.0:
            raise ValueError("growth must exceed 1")
        self.lo = lo
        self.hi = hi
        self.growth = growth
        self._log_lo = math.log(lo)
        self._inv_log_growth = 1.0 / math.log(growth)
        self._sqrt_growth = math.sqrt(growth)
        self._n_buckets = max(1, math.ceil((math.log(hi) - self._log_lo) * self._inv_log_growth))
        self.counts = np.zeros(self._n_buckets, dtype=np.int64)
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        # Neumaier-compensated running sums (value and value²)
        self._sum = 0.0
        self._sum_c = 0.0
        self._sum_sq = 0.0
        self._sum_sq_c = 0.0

    # ------------------------------------------------------------------
    def _bucket(self, value: float) -> int:
        if value < self.lo:
            return 0
        i = int((math.log(value) - self._log_lo) * self._inv_log_growth)
        last = self._n_buckets - 1
        return last if i > last else i

    def record(self, value: float) -> None:
        """Fold one sample in (O(1), no allocation)."""
        self.counts[self._bucket(value)] += 1
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Neumaier: the compensation term recovers what the naive
        # accumulator drops when |sum| and |value| differ in magnitude
        s = self._sum
        t = s + value
        self._sum_c += (s - t) + value if abs(s) >= abs(value) else (value - t) + s
        self._sum = t
        sq = value * value
        s = self._sum_sq
        t = s + sq
        self._sum_sq_c += (s - t) + sq if abs(s) >= abs(sq) else (sq - t) + s
        self._sum_sq = t

    def record_many(self, values) -> None:
        """Fold an iterable of samples (convenience; loops :meth:`record`)."""
        for v in values:
            self.record(v)

    # ------------------------------------------------------------------
    @property
    def sum(self) -> float:
        return self._sum + self._sum_c

    @property
    def relative_error(self) -> float:
        """Documented worst-case relative quantile error."""
        return quantile_error_bound(self.growth)

    def mean(self) -> float:
        if not self.count:
            raise ValueError("empty histogram")
        return self.sum / self.count

    def variance(self) -> float:
        """Population variance (ddof=0), from the compensated moments."""
        if not self.count:
            raise ValueError("empty histogram")
        m = self.mean()
        # guard the subtraction: float cancellation can dip epsilon-negative
        return max((self._sum_sq + self._sum_sq_c) / self.count - m * m, 0.0)

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]); see the accuracy contract.

        Matches NumPy's ``percentile`` convention at the resolution of one
        bucket: the returned bucket is the one holding the sample at rank
        ``q * (count - 1)``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            raise ValueError("empty histogram")
        if self.count == 1 or q == 0.0:
            return self.min if q == 0.0 else (self.max if q == 1.0 else self._mid_of_rank(q))
        if q == 1.0:
            return self.max
        return self._mid_of_rank(q)

    def _mid_of_rank(self, q: float) -> float:
        rank = q * (self.count - 1)
        cum = np.cumsum(self.counts)
        i = int(np.searchsorted(cum, math.floor(rank) + 1))
        # geometric midpoint of bucket i, clamped to the observed range
        mid = self.lo * self.growth**i * self._sqrt_growth
        return min(max(mid, self.min), self.max)

    def percentile(self, p: float) -> float:
        """NumPy-flavoured alias: ``p`` in [0, 100]."""
        return self.quantile(p / 100.0)

    # ------------------------------------------------------------------
    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram of the identical geometry into this one."""
        if (other.lo, other.hi, other.growth) != (self.lo, self.hi, self.growth):
            raise ValueError("cannot merge histograms with different geometry")
        self.counts += other.counts
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._sum += other._sum + other._sum_c
        self._sum_sq += other._sum_sq + other._sum_sq_c

    def nbytes(self) -> int:
        """Fixed memory footprint of the bucket array."""
        return int(self.counts.nbytes)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LogHistogram n={self.count} buckets={self._n_buckets} "
            f"range=[{self.lo}, {self.hi}) growth={self.growth}>"
        )
