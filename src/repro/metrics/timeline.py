"""Timeline sampling: time-series views of a running experiment.

The paper's figures report end-of-run aggregates; operators of the real
system also need the *evolution* — queue depths, instantaneous GPU states,
per-interval cache hit rates.  :class:`TimelineSampler` snapshots the
system on a fixed period (simulated time) and exposes the series as NumPy
arrays ready for plotting or CSV export.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.gpu import GPUState
from ..sim import PeriodicTimer

__all__ = ["TimelineSample", "TimelineSampler"]


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of system state."""

    time_s: float
    global_queue_depth: int
    local_queue_depth: int
    gpus_idle: int
    gpus_loading: int
    gpus_inferring: int
    completed_requests: int
    cumulative_misses: int


class TimelineSampler:
    """Periodic sampler over a :class:`~repro.runtime.system.FaaSCluster`.

    >>> from repro.runtime import FaaSCluster, SystemConfig
    >>> system = FaaSCluster(SystemConfig())
    >>> sampler = TimelineSampler(system, period_s=10.0)
    >>> sampler.start()
    >>> system.run(until=30.0)
    >>> len(sampler.samples)
    3
    >>> sampler.stop()
    """

    def __init__(self, system, *, period_s: float = 5.0) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.system = system
        self.period_s = period_s
        self.samples: list[TimelineSample] = []
        self._timer = PeriodicTimer(system.sim, period_s, self._snapshot)

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    def _snapshot(self) -> None:
        gpus = self.system.cluster.gpus
        states = [g.state for g in gpus]
        completed = self.system.completed
        self.samples.append(
            TimelineSample(
                time_s=self.system.sim.now,
                global_queue_depth=len(self.system.scheduler.global_queue),
                local_queue_depth=self.system.scheduler.local_queues.total(),
                gpus_idle=sum(1 for s in states if s is GPUState.IDLE),
                gpus_loading=sum(1 for s in states if s is GPUState.LOADING),
                gpus_inferring=sum(1 for s in states if s is GPUState.INFERRING),
                completed_requests=len(completed),
                cumulative_misses=sum(1 for r in completed if r.cache_hit is False),
            )
        )

    # ------------------------------------------------------------------
    # Series accessors
    # ------------------------------------------------------------------
    def series(self, field: str) -> np.ndarray:
        """One sampled column as a NumPy array (see TimelineSample fields)."""
        if not self.samples:
            return np.empty(0)
        if not hasattr(self.samples[0], field):
            raise KeyError(f"unknown timeline field {field!r}")
        return np.array([getattr(s, field) for s in self.samples], dtype=float)

    def instantaneous_sm_utilization(self) -> np.ndarray:
        """Fraction of GPUs whose SMs were busy at each sample instant."""
        total = len(self.system.cluster.gpus)
        return self.series("gpus_inferring") / total

    def interval_miss_ratio(self) -> np.ndarray:
        """Cache miss ratio within each sampling interval (NaN when idle)."""
        misses = np.diff(self.series("cumulative_misses"), prepend=0.0)
        done = np.diff(self.series("completed_requests"), prepend=0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(done > 0, misses / done, np.nan)

    def peak_queue_depth(self) -> int:
        if not self.samples:
            return 0
        return int(self.series("global_queue_depth").max())

    def to_rows(self) -> list[dict]:
        """Flat dict rows (e.g. for csv.DictWriter)."""
        return [vars(s) | {} for s in self.samples]
