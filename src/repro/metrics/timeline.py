"""Timeline sampling: time-series views of a running experiment.

The paper's figures report end-of-run aggregates; operators of the real
system also need the *evolution* — queue depths, instantaneous GPU states,
per-interval cache hit rates.  :class:`TimelineSampler` snapshots the
system on a fixed period (simulated time) and exposes the series as NumPy
arrays ready for plotting or CSV export.

Samples land in a columnar buffer (one float64 matrix grown geometrically)
and each snapshot reads the collector's running counters, so a snapshot is
O(GPUs) — the seed rescanned the completed-request list per tick, which
made sampling quadratic over a long run.  :attr:`TimelineSampler.samples`
materializes :class:`TimelineSample` objects lazily for drill-down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.gpu import GPUState
from ..sim import PeriodicTimer

__all__ = ["TimelineSample", "TimelineSampler"]

_FIELDS = (
    "time_s",
    "global_queue_depth",
    "local_queue_depth",
    "gpus_idle",
    "gpus_loading",
    "gpus_inferring",
    "completed_requests",
    "cumulative_misses",
)
_FIELD_INDEX = {name: i for i, name in enumerate(_FIELDS)}
_INT_FIELDS = frozenset(_FIELDS[1:])


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of system state."""

    time_s: float
    global_queue_depth: int
    local_queue_depth: int
    gpus_idle: int
    gpus_loading: int
    gpus_inferring: int
    completed_requests: int
    cumulative_misses: int


class TimelineSampler:
    """Periodic sampler over a :class:`~repro.runtime.system.FaaSCluster`.

    >>> from repro.runtime import FaaSCluster, SystemConfig
    >>> system = FaaSCluster(SystemConfig())
    >>> sampler = TimelineSampler(system, period_s=10.0)
    >>> sampler.start()
    >>> system.run(until=30.0)
    >>> len(sampler.samples)
    3
    >>> sampler.stop()
    """

    def __init__(self, system, *, period_s: float = 5.0) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.system = system
        self.period_s = period_s
        self._n = 0
        self._buf = np.empty((64, len(_FIELDS)), dtype=np.float64)
        self._samples_cache: tuple[int, list[TimelineSample]] | None = None
        self._timer = PeriodicTimer(system.sim, period_s, self._snapshot)

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    def _snapshot(self) -> None:
        system = self.system
        idle = loading = inferring = 0
        for g in system.cluster.gpus:
            state = g.state
            if state is GPUState.IDLE:
                idle += 1
            elif state is GPUState.LOADING:
                loading += 1
            elif state is GPUState.INFERRING:
                inferring += 1
        metrics = system.metrics
        i = self._n
        if i == len(self._buf):
            grown = np.empty((2 * len(self._buf), len(_FIELDS)), dtype=np.float64)
            grown[:i] = self._buf
            self._buf = grown
        self._buf[i] = (
            system.sim.now,
            len(system.scheduler.global_queue),
            system.scheduler.local_queues.total(),
            idle,
            loading,
            inferring,
            metrics.completed_count,   # running counters: O(1) instead of
            metrics.miss_count,        # rescanning the completed list
        )
        self._n = i + 1

    # ------------------------------------------------------------------
    # Series accessors
    # ------------------------------------------------------------------
    @property
    def samples(self) -> list[TimelineSample]:
        """Snapshots as objects (materialized from the columns, cached
        until the next snapshot lands)."""
        cached = self._samples_cache
        if cached is not None and cached[0] == self._n:
            return cached[1]
        rows = [
            TimelineSample(
                row[0], int(row[1]), int(row[2]), int(row[3]),
                int(row[4]), int(row[5]), int(row[6]), int(row[7]),
            )
            for row in self._buf[: self._n].tolist()
        ]
        self._samples_cache = (self._n, rows)
        return rows

    def series(self, field: str) -> np.ndarray:
        """One sampled column as a NumPy array (see TimelineSample fields)."""
        idx = _FIELD_INDEX.get(field)
        if idx is None:
            raise KeyError(f"unknown timeline field {field!r}")
        return self._buf[: self._n, idx].copy()

    def instantaneous_sm_utilization(self) -> np.ndarray:
        """Fraction of GPUs whose SMs were busy at each sample instant."""
        total = len(self.system.cluster.gpus)
        return self.series("gpus_inferring") / total

    def interval_miss_ratio(self) -> np.ndarray:
        """Cache miss ratio within each sampling interval (NaN when idle)."""
        misses = np.diff(self.series("cumulative_misses"), prepend=0.0)
        done = np.diff(self.series("completed_requests"), prepend=0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(done > 0, misses / done, np.nan)

    def peak_queue_depth(self) -> int:
        if not self._n:
            return 0
        return int(self.series("global_queue_depth").max())

    def to_rows(self) -> list[dict]:
        """Flat dict rows (e.g. for csv.DictWriter)."""
        out = []
        for row in self._buf[: self._n]:
            d = {"time_s": float(row[0])}
            for name in _FIELDS[1:]:
                d[name] = int(row[_FIELD_INDEX[name]])
            out.append(d)
        return out
