"""Timeline sampling: time-series views of a running experiment.

The paper's figures report end-of-run aggregates; operators of the real
system also need the *evolution* — queue depths, instantaneous GPU states,
per-interval cache hit rates.  :class:`TimelineSampler` snapshots the
system on a fixed period (simulated time) and exposes the series as NumPy
arrays ready for plotting or CSV export.

Samples land in a columnar buffer (one float64 matrix grown geometrically)
and each snapshot reads the collector's running counters, so a snapshot is
O(GPUs) — the seed rescanned the completed-request list per tick, which
made sampling quadratic over a long run.  :attr:`TimelineSampler.samples`
materializes :class:`TimelineSample` objects lazily for drill-down.

:class:`TimelineProbe` is the sampler's *passive* sibling, built for the
sweep orchestrator (:mod:`repro.experiments.sweep`): it rides the
simulator's post-event hook and records one row whenever the clock crosses
a period boundary, injecting **no events of its own**.  A probed run's
event stream — and therefore its DecisionLog, metrics, and final clock —
is identical to an unprobed one, and a drain-to-empty ``run()`` still
terminates (a :class:`~repro.sim.PeriodicTimer` would reschedule itself
forever).

Both keep memory **bounded** when asked: pass ``max_samples`` (an even
budget) and, whenever the row count hits it, the series is decimated —
every other row is dropped and the sampling period doubles, so the kept
rows still sit exactly on the (new, coarser) period boundaries.  A run of
any length then holds between ``max_samples/2`` and ``max_samples`` rows,
trading resolution for flat RSS — the timeline analogue of the metrics
collector's histogram fold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.gpu import GPUState
from ..sim import PeriodicTimer

__all__ = ["TimelineSample", "TimelineSampler", "TimelineProbe", "TIMELINE_FIELDS"]

_FIELDS = (
    "time_s",
    "global_queue_depth",
    "local_queue_depth",
    "gpus_idle",
    "gpus_loading",
    "gpus_inferring",
    "completed_requests",
    "cumulative_misses",
)
_FIELD_INDEX = {name: i for i, name in enumerate(_FIELDS)}
_INT_FIELDS = frozenset(_FIELDS[1:])


def _check_max_samples(max_samples: int | None) -> int | None:
    if max_samples is None:
        return None
    if max_samples < 2 or max_samples % 2:
        raise ValueError("max_samples must be an even number >= 2")
    return int(max_samples)

#: public row schema shared by :class:`TimelineSampler` and
#: :class:`TimelineProbe` (and persisted per cell by the sweep store)
TIMELINE_FIELDS = _FIELDS


def _capture_row(system, time_s: float) -> tuple:
    """One snapshot row of the shared schema, stamped at ``time_s``."""
    idle = loading = inferring = 0
    for g in system.cluster.gpus:
        state = g.state
        if state is GPUState.IDLE:
            idle += 1
        elif state is GPUState.LOADING:
            loading += 1
        elif state is GPUState.INFERRING:
            inferring += 1
    metrics = system.metrics
    return (
        time_s,
        len(system.scheduler.global_queue),
        system.scheduler.local_queues.total(),
        idle,
        loading,
        inferring,
        metrics.completed_count,   # running counters: O(1) instead of
        metrics.miss_count,        # rescanning the completed list
    )


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of system state."""

    time_s: float
    global_queue_depth: int
    local_queue_depth: int
    gpus_idle: int
    gpus_loading: int
    gpus_inferring: int
    completed_requests: int
    cumulative_misses: int


class TimelineSampler:
    """Periodic sampler over a :class:`~repro.runtime.system.FaaSCluster`.

    >>> from repro.runtime import FaaSCluster, SystemConfig
    >>> system = FaaSCluster(SystemConfig())
    >>> sampler = TimelineSampler(system, period_s=10.0)
    >>> sampler.start()
    >>> system.run(until=30.0)
    >>> len(sampler.samples)
    3
    >>> sampler.stop()
    """

    def __init__(
        self, system, *, period_s: float = 5.0, max_samples: int | None = None
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.system = system
        self.period_s = period_s
        self.max_samples = _check_max_samples(max_samples)
        self._n = 0
        self._buf = np.empty((64, len(_FIELDS)), dtype=np.float64)
        self._samples_cache: tuple[int, list[TimelineSample]] | None = None
        self._timer = PeriodicTimer(system.sim, period_s, self._snapshot)

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    def _snapshot(self) -> None:
        system = self.system
        i = self._n
        if i == len(self._buf):
            grown = np.empty((2 * len(self._buf), len(_FIELDS)), dtype=np.float64)
            grown[:i] = self._buf
            self._buf = grown
        self._buf[i] = _capture_row(system, system.sim.now)
        self._n = i + 1
        if self.max_samples is not None and self._n == self.max_samples:
            self._decimate()

    def _decimate(self) -> None:
        """Halve the series, double the period; rows stay on boundaries.

        Row k sits at ``start + (k+1) * period``; keeping odd indices
        keeps exactly the even multiples of the old period — which are
        the boundaries of the doubled one.  The in-flight timer picks the
        new period up at its next self-reschedule, so the sample after
        the last kept row lands on the next doubled-period boundary.
        """
        kept = self._buf[1 : self._n : 2].copy()
        self._n = len(kept)
        self._buf[: self._n] = kept
        self.period_s *= 2.0
        self._timer.set_period(self.period_s)
        self._samples_cache = None

    # ------------------------------------------------------------------
    # Series accessors
    # ------------------------------------------------------------------
    @property
    def samples(self) -> list[TimelineSample]:
        """Snapshots as objects (materialized from the columns, cached
        until the next snapshot lands)."""
        cached = self._samples_cache
        if cached is not None and cached[0] == self._n:
            return cached[1]
        rows = [
            TimelineSample(
                row[0], int(row[1]), int(row[2]), int(row[3]),
                int(row[4]), int(row[5]), int(row[6]), int(row[7]),
            )
            for row in self._buf[: self._n].tolist()
        ]
        self._samples_cache = (self._n, rows)
        return rows

    def series(self, field: str) -> np.ndarray:
        """One sampled column as a NumPy array (see TimelineSample fields)."""
        idx = _FIELD_INDEX.get(field)
        if idx is None:
            raise KeyError(f"unknown timeline field {field!r}")
        return self._buf[: self._n, idx].copy()

    def instantaneous_sm_utilization(self) -> np.ndarray:
        """Fraction of GPUs whose SMs were busy at each sample instant."""
        total = len(self.system.cluster.gpus)
        return self.series("gpus_inferring") / total

    def interval_miss_ratio(self) -> np.ndarray:
        """Cache miss ratio within each sampling interval (NaN when idle)."""
        misses = np.diff(self.series("cumulative_misses"), prepend=0.0)
        done = np.diff(self.series("completed_requests"), prepend=0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(done > 0, misses / done, np.nan)

    def peak_queue_depth(self) -> int:
        if not self._n:
            return 0
        return int(self.series("global_queue_depth").max())

    def to_rows(self) -> list[dict]:
        """Flat dict rows (e.g. for csv.DictWriter)."""
        out = []
        for row in self._buf[: self._n]:
            d = {"time_s": float(row[0])}
            for name in _FIELDS[1:]:
                d[name] = int(row[_FIELD_INDEX[name]])
            out.append(d)
        return out


class TimelineProbe:
    """Event-driven timeline sampler that perturbs nothing.

    Registered on the simulator's post-event hook: after every event the
    probe checks whether the clock crossed one or more period boundaries
    and, if so, records one row per boundary (stamped at the boundary time,
    reading the state at the first event at-or-after it).  Because no sim
    events are injected, the probed run is bit-identical to an unprobed
    one — which is what lets the sweep orchestrator persist a timeline
    matrix for every cell while still guaranteeing byte-identical
    summaries between probed (sweep) and direct (:func:`~repro.
    experiments.runner.run_experiment`) execution.

    The row schema is :data:`TIMELINE_FIELDS`, shared with
    :class:`TimelineSampler`.
    """

    def __init__(
        self, system, *, period_s: float = 5.0, max_samples: int | None = None
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.system = system
        self.period_s = period_s
        self.max_samples = _check_max_samples(max_samples)
        self._rows: list[tuple] = []
        self._next = system.sim.now + period_s
        self._unsubscribe = system.sim.subscribe_post_event(self._on_event)

    def _on_event(self) -> None:
        now = self.system.sim.now
        while now >= self._next:
            self._rows.append(_capture_row(self.system, self._next))
            self._next += self.period_s
            if self.max_samples is not None and len(self._rows) == self.max_samples:
                # same decimation as the sampler: row k is at boundary
                # (k+1)·period, so odd indices are the even multiples —
                # the boundaries of the doubled period
                self._rows = self._rows[1::2]
                self.period_s *= 2.0
                self._next = self._rows[-1][0] + self.period_s

    def stop(self) -> None:
        """Detach from the simulator (idempotent)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def fields(self) -> tuple[str, ...]:
        return TIMELINE_FIELDS

    def matrix(self) -> list[list[float]]:
        """Rows as plain floats (JSON-ready; one list per sample)."""
        return [[float(v) for v in row] for row in self._rows]

    def to_numpy(self) -> np.ndarray:
        """Rows as one ``(samples, fields)`` float64 matrix."""
        if not self._rows:
            return np.empty((0, len(_FIELDS)), dtype=np.float64)
        return np.asarray(self._rows, dtype=np.float64)
