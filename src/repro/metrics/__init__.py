"""Metrics: per-run collection and the paper's evaluation summaries."""

from .collector import MetricsCollector
from .summary import RunSummary, summarize
from .timeline import TIMELINE_FIELDS, TimelineProbe, TimelineSample, TimelineSampler

__all__ = [
    "MetricsCollector",
    "RunSummary",
    "summarize",
    "TIMELINE_FIELDS",
    "TimelineProbe",
    "TimelineSample",
    "TimelineSampler",
]
