"""Metrics: per-run collection and the paper's evaluation summaries."""

from .collector import MetricsCollector
from .summary import RunSummary, summarize
from .timeline import TimelineSample, TimelineSampler

__all__ = [
    "MetricsCollector",
    "RunSummary",
    "summarize",
    "TimelineSample",
    "TimelineSampler",
]
