"""Metrics: per-run collection and the paper's evaluation summaries."""

from .collector import ExactWindow, MetricsCollector
from .exposition import prometheus_exposition
from .histogram import DEFAULT_GROWTH, LogHistogram, quantile_error_bound
from .summary import RunSummary, per_architecture_breakdown, summarize
from .timeline import TIMELINE_FIELDS, TimelineProbe, TimelineSample, TimelineSampler

__all__ = [
    "DEFAULT_GROWTH",
    "ExactWindow",
    "LogHistogram",
    "MetricsCollector",
    "RunSummary",
    "per_architecture_breakdown",
    "prometheus_exposition",
    "quantile_error_bound",
    "summarize",
    "TIMELINE_FIELDS",
    "TimelineProbe",
    "TimelineSample",
    "TimelineSampler",
]
