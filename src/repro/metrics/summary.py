"""Summary statistics: the paper's evaluation metrics (§V).

Three headline metrics (§V-A): average function latency, cache miss ratio,
and GPU (SM) utilization; plus the efficiency metrics of §V-D (false miss
ratio, average duplicates of the hottest model) and the latency variance
examined in the O3 sensitivity study (§V-E).

All request-level quantities reduce the collector's completion *columns*
with NumPy (means, percentiles, masked SLA counts) rather than iterating
request objects; the object path survives only as a fallback for
collectors whose ``completed`` list was populated out-of-band (hand-built
fixtures), detected by a row-count mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.topology import Cluster
from ..core.request import InferenceRequest
from .collector import MetricsCollector

__all__ = ["RunSummary", "summarize"]


@dataclass(frozen=True)
class RunSummary:
    """All evaluation metrics for one experiment run."""

    policy: str
    working_set: int
    completed_requests: int
    avg_latency_s: float          # Fig. 4a
    latency_variance: float       # §V-E variance claim
    p50_latency_s: float
    p99_latency_s: float
    cache_miss_ratio: float       # Fig. 4b
    sm_utilization: float         # Fig. 4c (mean over GPUs)
    false_miss_ratio: float       # Fig. 5
    avg_duplicates_top_model: float  # Fig. 6
    top_model: str | None
    avg_queueing_s: float
    horizon_s: float
    #: fraction of SLA-carrying requests that missed their deadline
    #: (0.0 when the workload carries no SLAs)
    sla_violation_ratio: float = 0.0
    # -- availability under faults (chaos replays; all zero when healthy) --
    #: requests dropped (deadline timeout / retry budget exhausted)
    lost_requests: int = 0
    #: failure-retry resubmissions absorbed across all requests
    total_retries: int = 0
    #: completions *within SLA* per second (no-SLA requests count as good);
    #: under faults this is the availability headline — throughput that
    #: actually served users, not just survived
    goodput_rps: float = 0.0
    #: faults that took effect during the run
    faults_injected: int = 0
    #: mean time-to-repair over healed faults (crash→recover, escalation→heal)
    mean_mttr_s: float = 0.0

    def row(self) -> dict[str, float | str | int | None]:
        """Flat dict for report tables."""
        return {
            "policy": self.policy,
            "working_set": self.working_set,
            "completed": self.completed_requests,
            "avg_latency_s": round(self.avg_latency_s, 3),
            "latency_var": round(self.latency_variance, 3),
            "p50_s": round(self.p50_latency_s, 3),
            "p99_s": round(self.p99_latency_s, 3),
            "miss_ratio": round(self.cache_miss_ratio, 4),
            "sm_util": round(self.sm_utilization, 4),
            "false_miss_ratio": round(self.false_miss_ratio, 4),
            "avg_dups_top1": round(self.avg_duplicates_top_model, 3),
        }


def _latencies(requests: list[InferenceRequest]) -> np.ndarray:
    return np.array([r.latency for r in requests], dtype=float)


def _columns_current(collector: MetricsCollector) -> bool:
    """Columns cover the completed list (False for hand-built fixtures)."""
    return collector.completed_count == len(collector.completed)


def per_architecture_breakdown(collector: MetricsCollector) -> dict[str, dict[str, float]]:
    """Per-architecture statistics: count, mean latency, miss ratio.

    Big models (vgg19) pay more per miss than small ones (squeezenet), so
    the breakdown shows where the locality wins come from.  Groups by the
    interned architecture codes: one boolean mask per architecture instead
    of a Python dict-of-lists pass over the requests.
    """
    if getattr(collector, "streaming", False):
        return _per_architecture_breakdown_streaming(collector)
    if not _columns_current(collector):
        return _per_architecture_breakdown_objects(collector)
    cols = collector.columns()
    lat = cols.latency
    misses = cols.cache_hit == 0
    out: dict[str, dict[str, float]] = {}
    names = collector.architectures
    for code in sorted(range(len(names)), key=lambda c: names[c]):
        mask = cols.architecture == code
        n = int(mask.sum())
        if not n:
            continue
        sel = lat[mask]
        out[names[code]] = {
            "count": float(n),
            "avg_latency_s": float(sel.mean()),
            "p99_latency_s": float(np.percentile(sel, 99)),
            "miss_ratio": float(misses[mask].sum()) / n,
        }
    return out


def _per_architecture_breakdown_streaming(collector: MetricsCollector) -> dict[str, dict[str, float]]:
    """Streaming-mode breakdown: exact inside the window, histogram past it."""
    names = collector.architectures
    window = collector.exact_window()
    out: dict[str, dict[str, float]] = {}
    if window is not None:
        # same masks, same float64 values, same reductions as the
        # columnar branch → byte-identical results
        lat = window.latency
        misses = window.cache_hit == 0
        for code in sorted(range(len(names)), key=lambda c: names[c]):
            mask = window.architecture == code
            n = int(mask.sum())
            if not n:
                continue
            sel = lat[mask]
            out[names[code]] = {
                "count": float(n),
                "avg_latency_s": float(sel.mean()),
                "p99_latency_s": float(np.percentile(sel, 99)),
                "miss_ratio": float(misses[mask].sum()) / n,
            }
        return out
    for code in sorted(collector._arch_stats, key=lambda c: names[c]):
        stats = collector._arch_stats[code]
        n = stats.hist.count
        if not n:
            continue
        out[names[code]] = {
            "count": float(n),
            "avg_latency_s": stats.hist.mean(),
            "p99_latency_s": stats.hist.percentile(99),
            "miss_ratio": stats.misses / n,
        }
    return out


def _per_architecture_breakdown_objects(collector: MetricsCollector) -> dict[str, dict[str, float]]:
    groups: dict[str, list[InferenceRequest]] = {}
    for r in collector.completed:
        groups.setdefault(r.model.architecture, []).append(r)
    out: dict[str, dict[str, float]] = {}
    for arch, reqs in sorted(groups.items()):
        lat = _latencies(reqs)
        misses = sum(1 for r in reqs if r.cache_hit is False)
        out[arch] = {
            "count": float(len(reqs)),
            "avg_latency_s": float(lat.mean()),
            "p99_latency_s": float(np.percentile(lat, 99)),
            "miss_ratio": misses / len(reqs),
        }
    return out


def summarize(
    collector: MetricsCollector,
    cluster: Cluster,
    *,
    policy: str = "?",
    working_set: int = 0,
    horizon: float | None = None,
    top_model: str | None = None,
) -> RunSummary:
    """Compute the full metric set from a finished run.

    ``top_model`` defaults to the most-invoked model instance; pass it
    explicitly when the workload's hottest function is known a priori.
    ``horizon`` defaults to the collector's current simulated time.
    """
    if getattr(collector, "streaming", False):
        return _summarize_streaming(
            collector,
            cluster,
            policy=policy,
            working_set=working_set,
            horizon=horizon,
            top_model=top_model,
        )
    reqs = collector.completed
    end = horizon if horizon is not None else collector.sim.now
    duration = max(end - collector.started_at, 1e-12)
    if not reqs:
        raise ValueError("no completed requests to summarize")
    if _columns_current(collector):
        cols = collector.columns()
        lat = cols.latency
        queueing_mean = float(np.mean(cols.queueing))
        misses = int(collector.miss_count)
        false_misses = int(collector.false_miss_count)
        with_sla = ~np.isnan(cols.sla_s)
        n_sla = int(with_sla.sum())
        n_violations = int(np.sum(lat[with_sla] > cols.sla_s[with_sla]))
        sla_violations = n_violations / n_sla if n_sla else 0.0
    else:  # out-of-band completed list: fall back to the object walk
        lat = _latencies(reqs)
        queueing_mean = float(np.mean([r.queueing_delay for r in reqs]))
        misses = sum(1 for r in reqs if r.cache_hit is False)
        false_misses = sum(1 for r in reqs if r.false_miss)
        sla_reqs = [r for r in reqs if r.sla_s is not None]
        n_violations = sum(1 for r in sla_reqs if not r.met_sla)
        sla_violations = n_violations / len(sla_reqs) if sla_reqs else 0.0
    top = top_model if top_model is not None else collector.most_invoked_model()
    sm = float(np.mean([g.sm_utilization(horizon=duration) for g in cluster.gpus]))
    return RunSummary(
        policy=policy,
        working_set=working_set,
        completed_requests=len(reqs),
        avg_latency_s=float(lat.mean()),
        latency_variance=float(lat.var(ddof=0)),
        p50_latency_s=float(np.percentile(lat, 50)),
        p99_latency_s=float(np.percentile(lat, 99)),
        cache_miss_ratio=misses / len(reqs),
        sm_utilization=sm,
        false_miss_ratio=false_misses / len(reqs),
        avg_duplicates_top_model=(
            collector.average_duplicates(top, horizon=end) if top is not None else 0.0
        ),
        top_model=top,
        avg_queueing_s=queueing_mean,
        horizon_s=duration,
        sla_violation_ratio=sla_violations,
        lost_requests=len(getattr(collector, "lost", ())),
        total_retries=int(getattr(collector, "retries_total", 0)),
        # goodput: completions that met their SLA (best-effort requests
        # count as good) per second of run
        goodput_rps=(len(reqs) - n_violations) / duration,
        faults_injected=int(getattr(collector, "faults_injected", 0)),
        mean_mttr_s=float(collector.mean_mttr())
        if hasattr(collector, "mean_mttr")
        else 0.0,
    )


def _summarize_streaming(
    collector: MetricsCollector,
    cluster: Cluster,
    *,
    policy: str = "?",
    working_set: int = 0,
    horizon: float | None = None,
    top_model: str | None = None,
) -> RunSummary:
    """Summary off the streaming collector's fixed-size state.

    While the run still fits the exact window this reduces the identical
    float64 values with the identical NumPy calls as the columnar branch
    of :func:`summarize` — byte-for-byte the same :class:`RunSummary`.
    Past the window, counts / ratios / SLA numbers stay exact (running
    counters), means come from compensated sums, and quantiles come from
    the log histograms within their documented relative-error bound.
    """
    n = collector.completed_count
    end = horizon if horizon is not None else collector.sim.now
    duration = max(end - collector.started_at, 1e-12)
    if not n:
        raise ValueError("no completed requests to summarize")
    window = collector.exact_window()
    if window is not None:
        lat = window.latency
        avg_latency = float(lat.mean())
        latency_var = float(lat.var(ddof=0))
        p50 = float(np.percentile(lat, 50))
        p99 = float(np.percentile(lat, 99))
        queueing_mean = float(np.mean(window.queueing))
    else:
        hist = collector.lat_hist
        avg_latency = hist.mean()
        latency_var = hist.variance()
        p50 = hist.percentile(50)
        p99 = hist.percentile(99)
        queueing_mean = collector.queueing_sum / n
    n_violations = collector.sla_violations
    sla_violations = n_violations / collector.sla_total if collector.sla_total else 0.0
    top = top_model if top_model is not None else collector.most_invoked_model()
    sm = float(np.mean([g.sm_utilization(horizon=duration) for g in cluster.gpus]))
    return RunSummary(
        policy=policy,
        working_set=working_set,
        completed_requests=n,
        avg_latency_s=avg_latency,
        latency_variance=latency_var,
        p50_latency_s=p50,
        p99_latency_s=p99,
        cache_miss_ratio=collector.miss_count / n,
        sm_utilization=sm,
        false_miss_ratio=collector.false_miss_count / n,
        avg_duplicates_top_model=(
            collector.average_duplicates(top, horizon=end) if top is not None else 0.0
        ),
        top_model=top,
        avg_queueing_s=queueing_mean,
        horizon_s=duration,
        sla_violation_ratio=sla_violations,
        lost_requests=collector.lost_count,
        total_retries=int(collector.retries_total),
        goodput_rps=(n - n_violations) / duration,
        faults_injected=int(collector.faults_injected),
        mean_mttr_s=float(collector.mean_mttr()),
    )
