"""Azure-trace file I/O.

The real *Azure Functions 2019* trace (Shahrad et al., ATC'20) ships as 14
daily CSVs — ``invocations_per_function_md.anon.dNN.csv`` — with one row
per function (hashed owner/app/function ids, trigger type) and one column
per minute (1..1440) holding that minute's invocation count.

This module reads and writes that exact format, so:

* users who *do* have the real trace can feed it straight into the §V-A.1
  extraction pipeline (:class:`FileTrace` is a drop-in for
  :class:`~repro.traces.azure.SyntheticAzureTrace` in
  :func:`~repro.traces.workload.build_workload`);
* the synthetic trace can be exported for inspection with standard tools.
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .azure import SyntheticAzureTrace

__all__ = ["TraceFrame", "write_invocations_csv", "read_invocations_csv", "FileTrace", "export_synthetic_day"]

_MINUTES_PER_DAY = 1440
_META_COLUMNS = ["HashOwner", "HashApp", "HashFunction", "Trigger"]


def _hash(value: str) -> str:
    """Deterministic 32-hex-char id, like the trace's anonymized hashes."""
    return hashlib.sha256(value.encode()).hexdigest()[:32]


@dataclass
class TraceFrame:
    """One day of per-function per-minute invocation counts."""

    function_ids: list[str]
    counts: np.ndarray  # (num_functions, 1440) int64
    triggers: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.counts.ndim != 2 or self.counts.shape[0] != len(self.function_ids):
            raise ValueError("counts must be (num_functions, minutes)")
        if self.counts.shape[1] != _MINUTES_PER_DAY:
            raise ValueError(f"a trace day has {_MINUTES_PER_DAY} minute columns")
        if (self.counts < 0).any():
            raise ValueError("invocation counts cannot be negative")
        if not self.triggers:
            self.triggers = ["http"] * len(self.function_ids)

    @property
    def total_invocations(self) -> int:
        return int(self.counts.sum())


def write_invocations_csv(path: str | Path, frame: TraceFrame) -> None:
    """Write one day in the Azure ``invocations_per_function`` format."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_META_COLUMNS + [str(m) for m in range(1, _MINUTES_PER_DAY + 1)])
        for i, fid in enumerate(frame.function_ids):
            writer.writerow(
                [
                    _hash(f"owner/{fid}"),
                    _hash(f"app/{fid}"),
                    _hash(f"fn/{fid}"),
                    frame.triggers[i],
                ]
                + frame.counts[i].tolist()
            )


def read_invocations_csv(path: str | Path) -> TraceFrame:
    """Read a daily trace CSV (real or exported)."""
    path = Path(path)
    function_ids: list[str] = []
    triggers: list[str] = []
    rows: list[list[int]] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if header[: len(_META_COLUMNS)] != _META_COLUMNS:
            raise ValueError(f"{path}: not an Azure invocations CSV (header {header[:4]})")
        n_minutes = len(header) - len(_META_COLUMNS)
        if n_minutes != _MINUTES_PER_DAY:
            raise ValueError(f"{path}: expected {_MINUTES_PER_DAY} minute columns, got {n_minutes}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(f"{path}:{line_no}: ragged row")
            # the hashed function id is the stable identity
            function_ids.append(row[2])
            triggers.append(row[3])
            rows.append([int(x) for x in row[len(_META_COLUMNS):]])
    if not rows:
        raise ValueError(f"{path}: trace file has no function rows")
    return TraceFrame(
        function_ids=function_ids, counts=np.asarray(rows, dtype=np.int64), triggers=triggers
    )


def export_synthetic_day(
    trace: SyntheticAzureTrace, path: str | Path, *, top_k: int = 100, day: int = 0
) -> TraceFrame:
    """Export one day of the synthetic trace (top-k functions) to CSV."""
    if day < 0 or day >= trace.config.days:
        raise ValueError(f"day must be in [0, {trace.config.days})")
    fids = trace.top_functions(top_k)
    minutes = range(day * _MINUTES_PER_DAY, (day + 1) * _MINUTES_PER_DAY)
    frame = TraceFrame(function_ids=fids, counts=trace.counts(fids, minutes))
    write_invocations_csv(path, frame)
    return frame


class FileTrace:
    """Multi-day trace backed by CSV files; drop-in for the synthetic trace.

    Implements the two methods :func:`~repro.traces.workload.build_workload`
    needs — ``top_functions(k)`` and ``counts(function_ids, minutes)`` —
    with popularity computed over the loaded days.
    """

    def __init__(self, frames: list[TraceFrame]) -> None:
        if not frames:
            raise ValueError("need at least one trace day")
        ids = frames[0].function_ids
        for f in frames[1:]:
            if f.function_ids != ids:
                raise ValueError("all days must cover the same functions")
        self.frames = frames
        self._matrix = np.concatenate([f.counts for f in frames], axis=1)
        totals = self._matrix.sum(axis=1)
        self._order = np.argsort(-totals, kind="stable")
        self.function_ids = ids
        self._index = {fid: i for i, fid in enumerate(ids)}

    @classmethod
    def load(cls, paths: list[str | Path]) -> "FileTrace":
        return cls([read_invocations_csv(p) for p in paths])

    @property
    def total_minutes(self) -> int:
        return self._matrix.shape[1]

    def top_functions(self, k: int) -> list[str]:
        if not 1 <= k <= len(self.function_ids):
            raise ValueError(f"k must be in [1, {len(self.function_ids)}]")
        return [self.function_ids[i] for i in self._order[:k]]

    def counts(self, function_ids: list[str], minutes: range) -> np.ndarray:
        if minutes.stop > self.total_minutes:
            raise ValueError(f"trace covers only {self.total_minutes} minutes")
        idx = [self._index[f] for f in function_ids]
        return self._matrix[np.ix_(idx, list(minutes))]
