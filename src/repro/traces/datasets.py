"""Synthetic inference inputs (substitute for MNIST / CIFAR-10 / Hymenoptera).

The paper feeds inference with ~150 images drawn from MNIST (28×28
grayscale), CIFAR-10 (32×32 RGB), and Hymenoptera (variable-size RGB photos
that "must be compressed before being used in model inference", §V-A.2).
These generators produce deterministic stand-ins with the same shapes and a
class-dependent signal (a class-specific frequency pattern plus noise), so
examples exercise real preprocessing and batching code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ImageBatch",
    "mnist_like",
    "cifar_like",
    "hymenoptera_like",
    "compress_to_batch",
    "load_dataset",
]


@dataclass(frozen=True)
class ImageBatch:
    """A batch of images plus their ground-truth class labels."""

    images: np.ndarray  # (N, C, H, W) float32 in [0, 1]
    labels: np.ndarray  # (N,) int64

    def __len__(self) -> int:
        return len(self.labels)


def _class_pattern(label: int, channels: int, size: int) -> np.ndarray:
    """A deterministic per-class spatial pattern (2-D sinusoid)."""
    y, x = np.mgrid[0:size, 0:size] / size
    freq = 1 + (label % 5)
    phase = label * 0.7
    pattern = 0.5 + 0.5 * np.sin(2 * np.pi * freq * (x + y) + phase)
    return np.broadcast_to(pattern, (channels, size, size)).copy()


def _make(
    n: int, channels: int, size: int, num_classes: int, noise: float, seed: int
) -> ImageBatch:
    if n < 1 or num_classes < 2:
        raise ValueError("need n >= 1 and num_classes >= 2")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=n)
    images = np.empty((n, channels, size, size), dtype=np.float32)
    for i, label in enumerate(labels):
        img = _class_pattern(int(label), channels, size)
        img += noise * rng.standard_normal(img.shape)
        images[i] = np.clip(img, 0.0, 1.0)
    return ImageBatch(images=images, labels=labels.astype(np.int64))


def mnist_like(n: int = 32, *, noise: float = 0.15, seed: int = 0) -> ImageBatch:
    """28×28 grayscale digits stand-in (10 classes)."""
    return _make(n, channels=1, size=28, num_classes=10, noise=noise, seed=seed)


def cifar_like(n: int = 32, *, noise: float = 0.2, seed: int = 0) -> ImageBatch:
    """32×32 RGB stand-in (10 classes)."""
    return _make(n, channels=3, size=32, num_classes=10, noise=noise, seed=seed)


def hymenoptera_like(
    n: int = 16, *, min_size: int = 64, max_size: int = 512, seed: int = 0
) -> list[np.ndarray]:
    """Variable-size RGB photos (2 classes: ants/bees stand-in).

    Returned as a list of ``(H, W, 3)`` arrays with H, W varying per image —
    like raw photo files, they must be compressed/resized before batching.
    """
    if min_size < 8 or max_size < min_size:
        raise ValueError("invalid size range")
    rng = np.random.default_rng(seed)
    images = []
    for i in range(n):
        h = int(rng.integers(min_size, max_size + 1))
        w = int(rng.integers(min_size, max_size + 1))
        label = i % 2
        base = _class_pattern(label, 3, max(h, w))[:, :h, :w]
        img = np.clip(base + 0.1 * rng.standard_normal((3, h, w)), 0, 1)
        images.append(np.ascontiguousarray(img.transpose(1, 2, 0), dtype=np.float32))
    return images


def compress_to_batch(images: list[np.ndarray], size: int = 32) -> np.ndarray:
    """Resize variable-size HWC images to an ``(N, 3, size, size)`` batch.

    Uses area-style down-sampling via integer-stride pooling (the
    "compression" step §V-A.2 requires for Hymenoptera inputs) — pure NumPy,
    fully vectorized per image.
    """
    if size < 1:
        raise ValueError("size must be positive")
    out = np.empty((len(images), 3, size, size), dtype=np.float32)
    for i, img in enumerate(images):
        if img.ndim != 3 or img.shape[2] != 3:
            raise ValueError(f"image {i} is not HWC RGB")
        h, w = img.shape[:2]
        rows = np.linspace(0, h, size + 1).astype(int)
        cols = np.linspace(0, w, size + 1).astype(int)
        chw = img.transpose(2, 0, 1)
        # block-mean pooling over the (possibly uneven) grid
        row_sums = np.add.reduceat(chw, rows[:-1], axis=1)
        block = np.add.reduceat(row_sums, cols[:-1], axis=2)
        areas = np.outer(np.diff(rows), np.diff(cols))
        areas = np.maximum(areas, 1)
        out[i] = block / areas[None, :, :]
    return out


def load_dataset(name: str, n: int = 32, *, seed: int = 0):
    """Dataset registry used by the examples (``mnist``/``cifar10``/``hymenoptera``)."""
    table = {
        "mnist": lambda: mnist_like(n, seed=seed),
        "cifar10": lambda: cifar_like(n, seed=seed),
        "hymenoptera": lambda: hymenoptera_like(n, seed=seed),
    }
    if name not in table:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(table)}")
    return table[name]()
