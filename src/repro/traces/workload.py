"""Workload extraction: from the (synthetic) Azure trace to a request stream.

Reproduces §V-A.1's pipeline exactly:

1. take the **first 6 minutes** of the trace;
2. keep only the **top-K most frequent functions** (K = working-set size,
   15/25/35 in the paper);
3. **normalize** each minute's total to **325 requests**;
4. map each unique function to a model in Table I, with model sizes
   **distributed evenly** over the working set;
5. within each minute, **randomly distribute** the invocations while
   preserving the per-minute totals.

Each function gets its own :class:`~repro.models.ModelInstance` (its own
weights → its own cache item), so the cache working set equals K even when
K exceeds the 22 distinct architectures (DESIGN.md §5.2).

Columnar pipeline
-----------------
:func:`build_workload` is column-oriented end to end: per minute it draws
the shuffled function indices and sorted uniform arrival offsets as NumPy
arrays (the same generator calls, in the same order, as the original
per-request loop — mandated by the seeded parity tests) and concatenates
them into two flat columns:

* ``Workload.arrival_times`` — float64, ascending within each minute;
* ``Workload.function_index`` — int64 index into ``function_ids``.

No :class:`~repro.core.request.InferenceRequest` objects are built during
extraction.  ``Workload.requests`` **materializes them lazily** — the full
object list is constructed once, on first access, and cached; column-only
consumers (``describe``, ``counts`` reductions, the bench's workload-build
timings, CSV export of arrival columns) never pay for object construction
at all.  At 100k+ requests that turns extraction from the dominant cost
into a rounding error and lets :meth:`~repro.runtime.system.FaaSCluster.
submit_workload` bulk-inject the arrival column with one heap build.

The literal seed implementation survives as :func:`build_workload_reference`
so the parity tests can prove the columns encode the *identical* request
stream (function ids, arrival times, model assignment, per-minute totals).

Streaming pipeline
------------------
:func:`build_workload_streaming` is the bounded-memory sibling: it runs the
same extraction head (counts, normalization, instances) but never
materializes the flat columns.  :meth:`StreamingWorkload.chunks` is a
generator that performs **the identical RNG draws, in the identical
order**, as :func:`build_workload` — one ``shuffle`` + sorted ``uniform``
per minute against a fresh ``default_rng(seed)`` — and yields the columns
in :class:`WorkloadChunk` blocks of a few minutes each.  Concatenating
every chunk reproduces ``build_workload``'s columns byte for byte (proven
by ``tests/traces/test_workload_chunks.py``), but a million-request replay
only ever holds one chunk's columns and request objects at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..core.request import InferenceRequest
from ..models.profiles import PAPER_BATCH_SIZE, ModelInstance
from ..models.zoo import TABLE1_ROWS, get_profile
from .azure import SyntheticAzureTrace

__all__ = [
    "WorkloadSpec",
    "Workload",
    "WorkloadChunk",
    "StreamingWorkload",
    "build_workload",
    "build_workload_reference",
    "build_workload_streaming",
    "assign_architectures",
]

#: paper defaults (§V-A.1)
PAPER_MINUTES = 6
PAPER_REQUESTS_PER_MINUTE = 325


@dataclass(frozen=True)
class WorkloadSpec:
    """Extraction parameters; defaults reproduce the paper."""

    working_set: int = 15
    minutes: int = PAPER_MINUTES
    requests_per_minute: int = PAPER_REQUESTS_PER_MINUTE
    batch_size: int = PAPER_BATCH_SIZE
    #: per-request SLA in seconds (None = best effort, the paper's setting)
    sla_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.working_set < 1:
            raise ValueError("working_set must be >= 1")
        if self.minutes < 1 or self.requests_per_minute < 1:
            raise ValueError("minutes and requests_per_minute must be >= 1")
        if self.sla_s is not None and self.sla_s <= 0:
            raise ValueError("sla_s must be positive when set")


@dataclass
class Workload:
    """A ready-to-submit request stream plus its provenance.

    The stream itself lives in two parallel columns (``arrival_times``,
    ``function_index``); request *objects* are materialized lazily via
    :attr:`requests` and cached, so purely columnar consumers never build
    them.  ``len(workload)`` and iteration are provided for convenience —
    iteration materializes (once) because the simulator mutates request
    objects in place and every consumer must observe the same instances.
    """

    spec: WorkloadSpec
    instances: dict[str, ModelInstance]          # function id -> model instance
    counts: np.ndarray                           # (working_set, minutes), normalized
    function_ids: list[str] = field(default_factory=list)
    #: per-request arrival column, seconds from window start, minute-sorted
    arrival_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: per-request index into ``function_ids``
    function_index: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    tenant: str = "default"
    _requests: list[InferenceRequest] | None = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return int(self.arrival_times.shape[0])

    def __iter__(self):
        return iter(self.requests)

    @property
    def materialized(self) -> bool:
        """Whether the request objects have been built yet."""
        return self._requests is not None

    @property
    def requests(self) -> list[InferenceRequest]:
        """The request stream as objects (built on first access, cached)."""
        if self._requests is None:
            spec = self.spec
            fids = self.function_ids
            instances = self.instances
            batch, tenant, sla = spec.batch_size, self.tenant, spec.sla_s
            # positional construction: this builds every request of a
            # replay inside the measured window, and CPython binds seven
            # keyword arguments measurably slower than positionals
            self._requests = [
                InferenceRequest(
                    (fid := fids[fi]), instances[fid], t, batch, None, tenant, sla
                )
                for t, fi in zip(self.arrival_times.tolist(), self.function_index.tolist())
            ]
        return self._requests

    @property
    def duration_s(self) -> float:
        return self.spec.minutes * 60.0

    @property
    def top_function(self) -> str:
        """Most-invoked function over the extracted window (Fig. 6's model)."""
        return self.function_ids[int(np.argmax(self.counts.sum(axis=1)))]

    @property
    def top_model_id(self) -> str:
        return self.instances[self.top_function].instance_id

    def describe(self) -> dict:
        """Summary statistics of the extracted workload (for reports).

        Includes the quantities §V-A.1 fixes (totals, rates, working set)
        plus the resulting skew and the aggregate model footprint — the
        ratio of footprint to cluster memory is what drives the
        working-set trends in Figs. 4–6.  Computed entirely from the
        columns; no request objects are materialized.
        """
        return _describe_columns(self.spec, self.counts, self.instances)


def _describe_columns(
    spec: WorkloadSpec, counts: np.ndarray, instances: dict[str, ModelInstance]
) -> dict:
    """Shared body of ``Workload.describe`` / ``StreamingWorkload.describe``."""
    per_fn = counts.sum(axis=1)
    total = int(per_fn.sum())
    sizes = [inst.occupied_mb for inst in instances.values()]
    return {
        "working_set": spec.working_set,
        "minutes": spec.minutes,
        "total_requests": total,
        "requests_per_minute": int(counts.sum(axis=0)[0]),
        "top_function_share": float(per_fn.max() / total) if total else 0.0,
        "top15_share": float(np.sort(per_fn)[::-1][:15].sum() / total) if total else 0.0,
        "distinct_architectures": len({i.architecture for i in instances.values()}),
        "total_model_footprint_mb": float(sum(sizes)),
        "mean_model_size_mb": float(np.mean(sizes)),
        "batch_size": spec.batch_size,
    }


def assign_architectures(function_ids: list[str]) -> dict[str, str]:
    """Map functions to Table I architectures with sizes spread evenly.

    Functions are in popularity order; architectures are in size order.
    Striding through the size-ordered table means consecutive popularity
    ranks get well-separated sizes, and any window of the working set holds
    a representative size mix — the paper's "models with different sizes
    are distributed evenly in the workload".
    """
    names = [name for name, *_ in TABLE1_ROWS]
    stride = 7  # coprime with 22 → visits all architectures before repeating
    return {
        fid: names[(i * stride) % len(names)] for i, fid in enumerate(function_ids)
    }


def _normalize_minute(counts: np.ndarray, target: int) -> np.ndarray:
    """Scale one minute's per-function counts to sum to ``target``.

    Largest-remainder rounding keeps the total exact while preserving the
    functions' relative shares.
    """
    total = counts.sum()
    if total == 0:
        # empty minute in the raw trace: spread the target uniformly
        base = np.full(len(counts), target // len(counts), dtype=np.int64)
        base[: target % len(counts)] += 1
        return base
    exact = counts * (target / total)
    floor = np.floor(exact).astype(np.int64)
    short = target - int(floor.sum())
    remainder_order = np.argsort(-(exact - floor), kind="stable")
    floor[remainder_order[:short]] += 1
    return floor


def _extract(
    spec: WorkloadSpec, trace: SyntheticAzureTrace, tenant: str
) -> tuple[list[str], np.ndarray, dict[str, ModelInstance], np.random.Generator]:
    """Shared head of both pipelines: counts, normalization, instances."""
    rng = np.random.default_rng(spec.seed)
    function_ids = trace.top_functions(spec.working_set)
    raw = trace.counts(function_ids, range(spec.minutes))
    normalized = np.stack(
        [
            _normalize_minute(raw[:, m], spec.requests_per_minute)
            for m in range(spec.minutes)
        ],
        axis=1,
    )
    arch_of = assign_architectures(function_ids)
    instances = {
        fid: ModelInstance(f"{fid}#model", get_profile(arch_of[fid]), tenant=tenant)
        for fid in function_ids
    }
    return list(function_ids), normalized, instances, rng


def _minute_columns(
    rng: np.random.Generator, base: np.ndarray, normalized: np.ndarray, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """One minute's draws: shuffled function indices, sorted uniform arrivals.

    One entry per invocation, shuffled, with sorted uniform arrivals —
    "we randomly distribute the invocations of different functions while
    maintaining the normalized total invocations per minute".  This is the
    single implementation of the per-minute generator contract: both
    :func:`build_workload` and :meth:`StreamingWorkload.chunks` call it
    minute by minute against a fresh seeded ``rng``, which is what makes
    the chunked stream byte-identical to the flat columns.
    """
    fn_indices = np.repeat(base, normalized[:, m])
    rng.shuffle(fn_indices)
    arrivals = np.sort(rng.uniform(60.0 * m, 60.0 * (m + 1), size=len(fn_indices)))
    return arrivals, fn_indices


def build_workload(
    spec: WorkloadSpec | None = None,
    *,
    trace: SyntheticAzureTrace | None = None,
    tenant: str = "default",
) -> Workload:
    """Run the full §V-A.1 extraction pipeline, column-oriented.

    Per minute this performs exactly the generator calls of the original
    per-request loop — ``shuffle`` over the repeated function indices,
    then a sorted ``uniform`` draw — so the resulting columns encode the
    byte-identical request stream (proven against
    :func:`build_workload_reference` by the seeded parity tests), but no
    request objects are constructed here.
    """
    spec = spec or WorkloadSpec()
    trace = trace or SyntheticAzureTrace()
    function_ids, normalized, instances, rng = _extract(spec, trace, tenant)

    n_functions = len(function_ids)
    per_minute = normalized.sum(axis=0)  # requests per minute (== target)
    total = int(per_minute.sum())
    arrival_col = np.empty(total, dtype=np.float64)
    fn_col = np.empty(total, dtype=np.int64)
    base = np.arange(n_functions)
    offset = 0
    for m in range(spec.minutes):
        arrivals, fn_indices = _minute_columns(rng, base, normalized, m)
        n = len(fn_indices)
        arrival_col[offset : offset + n] = arrivals
        fn_col[offset : offset + n] = fn_indices
        offset += n
    return Workload(
        spec=spec,
        instances=instances,
        counts=normalized,
        function_ids=function_ids,
        arrival_times=arrival_col,
        function_index=fn_col,
        tenant=tenant,
    )


def build_workload_reference(
    spec: WorkloadSpec | None = None,
    *,
    trace: SyntheticAzureTrace | None = None,
    tenant: str = "default",
) -> Workload:
    """The seed repository's per-request extraction loop, retained verbatim.

    Builds one :class:`InferenceRequest` at a time in Python — the path the
    columnar pipeline must reproduce byte for byte.  Kept as executable
    documentation, as the parity baseline, and as the bench's
    "pre-vectorization" workload generator.
    """
    spec = spec or WorkloadSpec()
    trace = trace or SyntheticAzureTrace()
    function_ids, normalized, instances, rng = _extract(spec, trace, tenant)

    requests: list[InferenceRequest] = []
    arrivals_all: list[float] = []
    fn_all: list[int] = []
    for m in range(spec.minutes):
        fn_indices = np.repeat(np.arange(len(function_ids)), normalized[:, m])
        rng.shuffle(fn_indices)
        arrivals = np.sort(rng.uniform(60.0 * m, 60.0 * (m + 1), size=len(fn_indices)))
        for t, fi in zip(arrivals, fn_indices):
            fid = function_ids[fi]
            requests.append(
                InferenceRequest(
                    function_name=fid,
                    model=instances[fid],
                    arrival_time=float(t),
                    batch_size=spec.batch_size,
                    tenant=tenant,
                    sla_s=spec.sla_s,
                )
            )
            arrivals_all.append(float(t))
            fn_all.append(int(fi))
    workload = Workload(
        spec=spec,
        instances=instances,
        counts=normalized,
        function_ids=function_ids,
        arrival_times=np.array(arrivals_all, dtype=np.float64),
        function_index=np.array(fn_all, dtype=np.int64),
        tenant=tenant,
    )
    workload._requests = requests  # already materialized, the hard way
    return workload


# ----------------------------------------------------------------------
# Streaming (chunked) pipeline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadChunk:
    """A contiguous block of the request stream, as columns.

    ``arrival_times`` is ascending within each minute (and minutes are
    emitted in order, so across a chunk too);  ``function_index`` indexes
    the owning :class:`StreamingWorkload`'s ``function_ids``.
    """

    start_minute: int
    minutes: int
    arrival_times: np.ndarray
    function_index: np.ndarray

    def __len__(self) -> int:
        return int(self.arrival_times.shape[0])


@dataclass
class StreamingWorkload:
    """The §V-A request stream as a re-iterable sequence of column chunks.

    Holds only the O(working_set × minutes) provenance (normalized counts,
    model instances); the per-request columns are generated chunk by chunk
    on demand.  :meth:`chunks` may be called any number of times — each
    call re-seeds the generator, so every iteration yields the identical
    stream (and concatenating it equals :func:`build_workload`'s columns
    exactly).
    """

    spec: WorkloadSpec
    instances: dict[str, ModelInstance]
    counts: np.ndarray                           # (working_set, minutes), normalized
    function_ids: list[str] = field(default_factory=list)
    tenant: str = "default"

    def __len__(self) -> int:
        return self.total_requests

    @property
    def total_requests(self) -> int:
        """Requests the full stream will contain (known without drawing)."""
        return int(self.counts.sum())

    @property
    def duration_s(self) -> float:
        return self.spec.minutes * 60.0

    @property
    def top_function(self) -> str:
        """Most-invoked function over the extracted window (Fig. 6's model)."""
        return self.function_ids[int(np.argmax(self.counts.sum(axis=1)))]

    @property
    def top_model_id(self) -> str:
        return self.instances[self.top_function].instance_id

    def describe(self) -> dict:
        """Summary statistics (same contract as :meth:`Workload.describe`)."""
        return _describe_columns(self.spec, self.counts, self.instances)

    def chunks(self, minutes_per_chunk: int = 8) -> Iterator[WorkloadChunk]:
        """Generate the stream as column blocks of ``minutes_per_chunk``.

        The draws are minute-by-minute against one fresh
        ``default_rng(seed)`` — exactly :func:`build_workload`'s loop — so
        the chunking granularity changes *nothing* about the stream, only
        how much of it is in memory at once.
        """
        if minutes_per_chunk < 1:
            raise ValueError("minutes_per_chunk must be >= 1")
        spec = self.spec
        normalized = self.counts
        rng = np.random.default_rng(spec.seed)
        base = np.arange(len(self.function_ids))
        for start in range(0, spec.minutes, minutes_per_chunk):
            stop = min(start + minutes_per_chunk, spec.minutes)
            arrival_parts = []
            fn_parts = []
            for m in range(start, stop):
                arrivals, fn_indices = _minute_columns(rng, base, normalized, m)
                arrival_parts.append(arrivals)
                fn_parts.append(fn_indices)
            yield WorkloadChunk(
                start_minute=start,
                minutes=stop - start,
                arrival_times=np.concatenate(arrival_parts),
                function_index=np.concatenate(fn_parts),
            )

    def materialize(self, chunk: WorkloadChunk) -> list[InferenceRequest]:
        """Build one chunk's request objects (the only ones alive at once).

        Field-identical to the corresponding slice of
        :attr:`Workload.requests` (``request_id`` excepted — ids are a
        process-global counter either way).
        """
        spec = self.spec
        fids = self.function_ids
        instances = self.instances
        batch, tenant, sla = spec.batch_size, self.tenant, spec.sla_s
        return [
            InferenceRequest(
                (fid := fids[fi]), instances[fid], t, batch, None, tenant, sla
            )
            for t, fi in zip(
                chunk.arrival_times.tolist(), chunk.function_index.tolist()
            )
        ]


def build_workload_streaming(
    spec: WorkloadSpec | None = None,
    *,
    trace: SyntheticAzureTrace | None = None,
    tenant: str = "default",
) -> StreamingWorkload:
    """Run the §V-A extraction head and return a chunked, lazy stream.

    Shares :func:`_extract` with the other builders (same counts, same
    normalization, same instances); defers every per-request draw to
    :meth:`StreamingWorkload.chunks`.
    """
    spec = spec or WorkloadSpec()
    trace = trace or SyntheticAzureTrace()
    function_ids, normalized, instances, _ = _extract(spec, trace, tenant)
    return StreamingWorkload(
        spec=spec,
        instances=instances,
        counts=normalized,
        function_ids=function_ids,
        tenant=tenant,
    )
