"""Workload substrate: synthetic Azure trace, extraction pipeline, datasets."""

from .azure import AzureTraceConfig, SyntheticAzureTrace, calibrate_zipf_exponent
from .datasets import (
    ImageBatch,
    cifar_like,
    compress_to_batch,
    hymenoptera_like,
    load_dataset,
    mnist_like,
)
from .io import (
    FileTrace,
    TraceFrame,
    export_synthetic_day,
    read_invocations_csv,
    write_invocations_csv,
)
from .workload import (
    StreamingWorkload,
    Workload,
    WorkloadChunk,
    WorkloadSpec,
    assign_architectures,
    build_workload,
    build_workload_reference,
    build_workload_streaming,
)

__all__ = [
    "AzureTraceConfig",
    "SyntheticAzureTrace",
    "calibrate_zipf_exponent",
    "ImageBatch",
    "cifar_like",
    "compress_to_batch",
    "hymenoptera_like",
    "load_dataset",
    "mnist_like",
    "FileTrace",
    "TraceFrame",
    "export_synthetic_day",
    "read_invocations_csv",
    "write_invocations_csv",
    "StreamingWorkload",
    "Workload",
    "WorkloadChunk",
    "WorkloadSpec",
    "assign_architectures",
    "build_workload",
    "build_workload_reference",
    "build_workload_streaming",
]
