"""Synthetic Azure Functions trace (substitute for Shahrad et al., ATC'20).

The paper evaluates against the public Microsoft Azure Functions 2019
trace: 14 daily files, one row per function, one column per minute, values
= invocations of that function in that minute (§V-A.1).  The trace itself
is not redistributable here, so this module generates a statistically
calibrated stand-in that preserves every property the paper's extraction
pipeline relies on:

* **shape**: ``days × 1440`` minutes × ``num_functions`` functions;
* **skew**: the top-15 functions together represent ≈56 % of the per-minute
  invocations — we calibrate a single Zipf exponent against exactly this
  anchor.  The paper also notes that functions below the top 15 each carry
  <0.01 %; a literal cliff at rank 16 would leave working-set ranks 16–35
  with essentially zero traffic after the 325-requests/minute
  normalization, contradicting the paper's own working-set-25/35
  experiments.  The calibrated Zipf reconciles both: the *far* tail
  (rank ≳ 600 of 46 k) satisfies the <0.01 % bound while ranks 16–35 stay
  realistically warm (interpretation recorded in DESIGN.md);
* **temporal structure**: per-minute totals follow a diurnal sinusoid with
  Poisson noise, and per-function counts are a multinomial draw from the
  popularity weights (function popularity is stable across minutes, as in
  the real trace's head).

The full matrix would be ~10⁹ cells, so reads are lazy: callers ask for the
counts of a chosen subset of functions over a range of minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AzureTraceConfig", "SyntheticAzureTrace", "calibrate_zipf_exponent"]

#: published skew anchors (paper §V-A.1)
PAPER_TOP_K = 15
PAPER_TOP_K_SHARE = 0.56
PAPER_NUM_FUNCTIONS = 46_413


def calibrate_zipf_exponent(
    num_functions: int = PAPER_NUM_FUNCTIONS,
    top_k: int = PAPER_TOP_K,
    top_share: float = PAPER_TOP_K_SHARE,
    *,
    tol: float = 1e-10,
) -> float:
    """Find the Zipf exponent s so the top-``top_k`` of ``num_functions``
    ranks carry ``top_share`` of the probability mass.

    The share is monotone in s, so bisection converges quickly.
    """
    if not 1 <= top_k < num_functions:
        raise ValueError("need 1 <= top_k < num_functions")
    if not 0.0 < top_share < 1.0:
        raise ValueError("top_share must be in (0, 1)")
    ranks = np.arange(1, num_functions + 1, dtype=float)

    def share(s: float) -> float:
        w = ranks**-s
        return float(w[:top_k].sum() / w.sum())

    lo, hi = 0.0, 4.0
    if share(hi) < top_share:
        raise ValueError("top_share unreachable with s <= 4")
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if share(mid) < top_share:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class AzureTraceConfig:
    """Shape and calibration knobs of the synthetic trace."""

    num_functions: int = PAPER_NUM_FUNCTIONS
    days: int = 14
    minutes_per_day: int = 1440
    #: mean invocations per minute across the whole platform
    mean_rate_per_minute: float = 50_000.0
    #: diurnal swing as a fraction of the mean (0 disables)
    diurnal_amplitude: float = 0.3
    top_k: int = PAPER_TOP_K
    top_k_share: float = PAPER_TOP_K_SHARE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_functions < 2 or self.days < 1 or self.minutes_per_day < 1:
            raise ValueError("invalid trace dimensions")
        if self.mean_rate_per_minute <= 0:
            raise ValueError("mean rate must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")

    @property
    def total_minutes(self) -> int:
        return self.days * self.minutes_per_day


class SyntheticAzureTrace:
    """Lazy, deterministic synthetic trace."""

    def __init__(self, config: AzureTraceConfig | None = None) -> None:
        self.config = config or AzureTraceConfig()
        cfg = self.config
        self.exponent = calibrate_zipf_exponent(
            cfg.num_functions, cfg.top_k, cfg.top_k_share
        )
        ranks = np.arange(1, cfg.num_functions + 1, dtype=float)
        weights = ranks**-self.exponent
        self.weights = weights / weights.sum()
        # function ids: "fnNNNNN" by popularity rank (rank 0 = hottest)
        self.function_ids = [f"fn{i:05d}" for i in range(cfg.num_functions)]

    # ------------------------------------------------------------------
    def top_functions(self, k: int) -> list[str]:
        """The k most popular functions (the paper's working set, §V-A.1)."""
        if not 1 <= k <= self.config.num_functions:
            raise ValueError(f"k must be in [1, {self.config.num_functions}]")
        return self.function_ids[:k]

    def share_of_top(self, k: int) -> float:
        """Fraction of all invocations going to the top-k functions."""
        return float(self.weights[:k].sum())

    def minute_rates(self, minutes: range) -> np.ndarray:
        """Diurnal Poisson rates for a whole minute range, in one shot.

        Column-oriented companion to :meth:`minute_total`: the sinusoid is
        evaluated over the minute vector with a single set of NumPy ops,
        producing bit-identical rates to the scalar path (same expression,
        same float64 arithmetic).
        """
        cfg = self.config
        m = np.arange(minutes.start, minutes.stop, minutes.step, dtype=np.int64)
        if len(m) and not (0 <= int(m.min()) and int(m.max()) < cfg.total_minutes):
            raise ValueError(f"minutes {minutes!r} outside trace of {cfg.total_minutes}")
        phase = 2.0 * np.pi * (m % cfg.minutes_per_day) / cfg.minutes_per_day
        return cfg.mean_rate_per_minute * (1.0 + cfg.diurnal_amplitude * np.sin(phase))

    def minute_total(self, minute: int, rng: np.random.Generator) -> int:
        """Poisson per-minute platform total with a diurnal profile."""
        cfg = self.config
        if not 0 <= minute < cfg.total_minutes:
            raise ValueError(f"minute {minute} outside trace of {cfg.total_minutes}")
        phase = 2.0 * np.pi * (minute % cfg.minutes_per_day) / cfg.minutes_per_day
        rate = cfg.mean_rate_per_minute * (1.0 + cfg.diurnal_amplitude * np.sin(phase))
        return int(rng.poisson(rate))

    def counts(self, function_ids: list[str], minutes: range) -> np.ndarray:
        """Invocation counts for a subset of functions over a minute range.

        Returns an ``(len(function_ids), len(minutes))`` integer array.  The
        subset's total per minute is a binomial thinning of the platform
        total; within the subset, counts are multinomial in the (re-scaled)
        popularity weights — exactly the distribution a dense generation
        followed by row selection would produce.

        The diurnal rate column is precomputed vectorized; only the three
        random draws stay per minute, because the per-minute child RNG is
        the documented reproducibility contract (any minute can be
        regenerated in isolation, and slicing a range must equal slicing
        the full matrix).
        """
        idx = [self._index(f) for f in function_ids]
        sub_w = self.weights[idx]
        sub_share = float(sub_w.sum())
        probs = sub_w / sub_share
        rates = self.minute_rates(minutes)
        out = np.zeros((len(idx), len(minutes)), dtype=np.int64)
        seed = self.config.seed
        for j, minute in enumerate(minutes):
            # per-minute child RNG keeps any minute reproducible in isolation
            m_rng = np.random.default_rng((seed, minute))
            total = int(m_rng.poisson(rates[j]))
            sub_total = m_rng.binomial(total, sub_share)
            out[:, j] = m_rng.multinomial(sub_total, probs)
        return out

    def _index(self, function_id: str) -> int:
        if not function_id.startswith("fn"):
            raise KeyError(f"unknown function id {function_id!r}")
        i = int(function_id[2:])
        if not 0 <= i < self.config.num_functions:
            raise KeyError(f"unknown function id {function_id!r}")
        return i
