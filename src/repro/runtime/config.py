"""System configuration for the GPU-enabled FaaS runtime."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chaos.plan import FAULT_PROFILES, FaultPlan
from ..cluster.topology import PAPER_TESTBED, ClusterSpec
from ..core.policies import DEFAULT_O3_LIMIT
from ..core.tenancy import TenantQuota

__all__ = [
    "SystemConfig",
    "streaming_config",
    "DEFAULT_STREAMING_COMPACT_KEEP",
    "EPHEMERAL_HOT_PREFIXES",
]

#: MVCC revisions retained by :func:`streaming_config`'s autocompaction
#: default — deep enough for any watcher lag, bounded at any replay size
DEFAULT_STREAMING_COMPACT_KEEP = 20_000

#: the control plane's high-churn status keys: written on every dispatch
#: and completion, never read at a historical revision (``gpu/lru/`` is
#: the Cache Manager's per-GPU eviction-order mirror — serialized once
#: per flush, only ever read live).  The canonical value for
#: ``SystemConfig(ephemeral_prefixes=...)`` — ordered
#: most-frequently-written first, since the store's membership test
#: (``str.startswith`` over the tuple) probes prefixes in order.
EPHEMERAL_HOT_PREFIXES = (
    "gpu/status/", "gpu/finish_time/", "fn/latency/", "gpu/lru/"
)


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a reproducible FaaS cluster.

    Defaults mirror the paper's testbed and the LALBO3 scheduler.
    """

    #: cluster topology (default: 3 nodes × 4 RTX 2080, §V-A.3)
    cluster: ClusterSpec = PAPER_TESTBED
    #: scheduling policy: "lb", "lalb", "lalbo3", or the "locality" strawman
    policy: str = "lalbo3"
    #: out-of-order dispatch skip limit (§IV-B; only used by lalbo3)
    o3_limit: int = DEFAULT_O3_LIMIT
    #: cache replacement policy per GPU: "lru", "fifo", "lfu", "size"
    replacement: str = "lru"
    #: Datastore watch-notification delay (0 = synchronous)
    watch_delay_s: float = 0.0
    #: batch the control plane's Datastore writes: each scheduling action's
    #: puts commit as one transaction → one revision → one coalesced watch
    #: batch (False restores the literal one-revision-per-put path)
    datastore_batching: bool = True
    #: event-driven pass elision: the Scheduler consults each policy's
    #: PassGuard against the dirty signals (idle-set delta, queue length,
    #: idle local work) and skips provably no-op scheduling passes, and
    #: policies narrow their idle-GPU walks with the same predicate.
    #: Decisions are byte-identical either way (asserted by the parity
    #: suites); False restores the literal always-pass engine.
    pass_elision: bool = True
    #: auto-compact the Datastore's MVCC history below a sliding revision
    #: horizon of this many revisions (etcd's ``--auto-compaction``
    #: analogue): the KV event log and per-key history stay bounded on
    #: 1M+-request replays instead of retaining every historical write.
    #: None (default) keeps full history.  Compaction never touches live
    #: keys, so scheduling decisions are unaffected.
    kv_autocompact_keep: int | None = None
    #: ephemeral-key tier: Datastore keys under these prefixes skip MVCC
    #: history and event-log records entirely (live reads, read-your-writes,
    #: and watch delivery are untouched; historical reads raise
    #: ``EphemeralKeyError``).  The high-churn status keys nothing replays —
    #: :data:`EPHEMERAL_HOT_PREFIXES` — are the intended value; with it set,
    #: compaction and ``latency_log_keep`` windows are near-free for those
    #: keys.  Scheduling decisions are byte-identical either way (asserted
    #: by the ephemeral parity suite).  ``()`` (default) keeps full etcd
    #: semantics for every key.
    ephemeral_prefixes: tuple[str, ...] = ()
    #: sliding window of ``fn/latency/<request_id>`` records each GPU
    #: Manager retains in the Datastore: past this many, the oldest is
    #: deleted in the same batched transaction that writes the newest.
    #: Those keys are write-only during a run (nothing schedules off
    #: them), but left to accumulate they pin one key string + KeyValue +
    #: LatencyRecord + history entry per request — the dominant linear
    #: memory term at 1M requests.  None (default) keeps every record.
    latency_log_keep: int | None = None
    #: per-tenant quotas (empty = no isolation limits)
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    #: master seed for all stochastic elements
    seed: int = 0
    #: named chaos profile ("none", "recoverable", "severe"): materialized
    #: into a seeded FaultPlan (using ``seed``) and compiled into simulator
    #: events at construction.  "none" builds nothing — zero events, zero
    #: overhead, byte-identical to the pre-chaos runtime.
    fault_profile: str = "none"
    #: explicit fault schedule; overrides ``fault_profile`` when set
    fault_plan: FaultPlan | None = None
    #: per-request deadline: a request still in the *global* queue this many
    #: seconds after arrival times out and is dropped (None = never)
    deadline_s: float | None = None
    #: retry budget for failure resubmission: a request aborted/stranded
    #: more than this many times is dropped as lost (None = unlimited,
    #: the historical behaviour)
    max_retries: int | None = None
    #: base backoff before a failure resubmission re-enters the global
    #: queue; doubles per retry already absorbed (0.0 = immediate
    #: resubmit, the historical behaviour)
    retry_backoff_s: float = 0.0
    #: health-watchdog heartbeat cadence and lease TTL (the watchdog is
    #: built whenever a fault plan is active; TTL must exceed the cadence)
    health_heartbeat_s: float = 1.0
    health_ttl_s: float = 3.0
    #: flat-memory metrics: fold completions into fixed-size histograms /
    #: running counters instead of columnar per-request storage (see
    #: :mod:`repro.metrics.collector`).  Summaries are byte-identical to
    #: columnar up to ``metrics_exact_cap`` completions, ~1 %-bounded
    #: quantiles beyond.  False keeps the exact columnar store.
    metrics_streaming: bool = False
    #: streaming mode's exact-window size (completions whose scalars are
    #: retained for byte-exact summaries before histograms take over)
    metrics_exact_cap: int = 20_000
    #: optional CSV path: streaming mode tees every completion row there
    #: for drill-down, since it keeps none of them in memory
    metrics_spill_path: str | None = None
    #: tracing backend: ``"null"`` (default) installs nothing — every
    #: component keeps its ``None`` tracer and the hot paths pay one
    #: identity test per hook; ``"flight"`` installs the slot-indexed
    #: :class:`~repro.obs.FlightRecorder` whose ring buffers capture
    #: request lifecycles, scheduler passes, KV commits, and chaos/cache
    #: instants for Chrome-trace export (see ``docs/observability.md``)
    tracer: str = "null"
    #: per-ring capacity of the flight recorder (records past it
    #: overwrite oldest-first; ``dropped`` counts what was lost).  The
    #: default retains every span of the 2k-request §V-A replay (~3.1k
    #: commits is its largest ring load) while keeping the rings' cache
    #: footprint small enough to stay inside the bench overhead gate
    tracer_capacity: int = 4096
    #: wall-span sampling stride for the two high-rate rings (scheduler
    #: passes, KV commits): every Nth span pays the clock probes and the
    #: ring write, the rest only bump the exact ``totals`` counters.
    #: The request-lifecycle and instant rings always record every
    #: event.  Passes and commits outnumber requests ~3:1 on the §V-A
    #: replay, and sampling them is what holds tracer-on overhead
    #: inside the bench gate; ``1`` records every span (full fidelity)
    trace_span_stride: int = 16
    #: scheduler explain mode: annotate every DecisionLog entry with a
    #: structured :class:`~repro.obs.Cause` — the pass that produced it,
    #: the dirty-signal state that armed the pass, and the policy's
    #: candidate-by-candidate trail.  Debugging lens (memory linear in
    #: decisions); decisions are byte-identical either way.
    trace_decisions: bool = False
    #: optional JSONL path: the flight recorder tees request records
    #: there with stride-doubling decimation (bounded like the streaming
    #: tier: at most ``trace_spill_keep × (1 + log2(n/keep))`` lines)
    trace_spill_path: str | None = None
    #: lines admitted per decimation level of the trace spill
    trace_spill_keep: int = DEFAULT_STREAMING_COMPACT_KEEP

    def __post_init__(self) -> None:
        if self.policy not in ("lb", "locality", "lalb", "lalbo3"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.o3_limit < 0:
            raise ValueError("o3_limit cannot be negative")
        if self.watch_delay_s < 0:
            raise ValueError("watch_delay_s cannot be negative")
        if self.kv_autocompact_keep is not None and self.kv_autocompact_keep < 1:
            raise ValueError("kv_autocompact_keep must be >= 1 when set")
        if not isinstance(self.ephemeral_prefixes, tuple):
            # a frozen dataclass can't coerce; insist on the hashable shape
            raise ValueError("ephemeral_prefixes must be a tuple of key prefixes")
        for prefix in self.ephemeral_prefixes:
            if not isinstance(prefix, str) or not prefix:
                raise ValueError("ephemeral_prefixes entries must be non-empty strings")
        if self.latency_log_keep is not None and self.latency_log_keep < 1:
            raise ValueError("latency_log_keep must be >= 1 when set")
        if self.fault_profile not in FAULT_PROFILES:
            known = ", ".join(sorted(FAULT_PROFILES))
            raise ValueError(
                f"unknown fault profile {self.fault_profile!r} (known: {known})"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s cannot be negative")
        if self.health_heartbeat_s <= 0:
            raise ValueError("health_heartbeat_s must be positive")
        if self.health_ttl_s <= self.health_heartbeat_s:
            raise ValueError("health_ttl_s must exceed health_heartbeat_s")
        if self.metrics_exact_cap < 0:
            raise ValueError("metrics_exact_cap cannot be negative")
        if self.metrics_spill_path is not None and not self.metrics_streaming:
            raise ValueError("metrics_spill_path requires metrics_streaming=True")
        if self.tracer not in ("null", "flight"):
            raise ValueError(f"unknown tracer {self.tracer!r} (known: null, flight)")
        if self.tracer_capacity < 16:
            raise ValueError("tracer_capacity must be >= 16")
        if self.trace_span_stride < 1:
            raise ValueError("trace_span_stride must be >= 1")
        if self.trace_spill_path is not None and self.tracer != "flight":
            raise ValueError('trace_spill_path requires tracer="flight"')
        if self.trace_spill_keep < 1:
            raise ValueError("trace_spill_keep must be >= 1")

    @property
    def faults_active(self) -> bool:
        """Whether this config carries a non-empty fault schedule."""
        if self.fault_plan is not None:
            return len(self.fault_plan) > 0
        return self.fault_profile != "none"


def streaming_config(**overrides) -> SystemConfig:
    """A :class:`SystemConfig` with every at-scale bounded-memory default on.

    The flat-RSS replay preset: streaming metrics (histogram fold past the
    exact window), MVCC autocompaction (bounded KV event log), and a
    sliding latency-record window (bounded live key set) — the three
    linear-memory consumers a million-request replay cannot afford.
    Any field can still be overridden, including the defaults this preset
    sets.

    >>> cfg = streaming_config(policy="lalb")
    >>> cfg.metrics_streaming, cfg.kv_autocompact_keep, cfg.policy
    (True, 20000, 'lalb')
    >>> cfg.latency_log_keep
    20000
    """
    merged: dict = {
        "metrics_streaming": True,
        "kv_autocompact_keep": DEFAULT_STREAMING_COMPACT_KEEP,
        "latency_log_keep": DEFAULT_STREAMING_COMPACT_KEEP,
    }
    merged.update(overrides)
    return SystemConfig(**merged)
