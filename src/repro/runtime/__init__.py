"""Runtime assembly: configuration and the FaaSCluster facade."""

from .config import SystemConfig
from .system import FaaSCluster

__all__ = ["SystemConfig", "FaaSCluster"]
