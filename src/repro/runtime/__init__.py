"""Runtime assembly: configuration and the FaaSCluster facade."""

from .config import (
    DEFAULT_STREAMING_COMPACT_KEEP,
    EPHEMERAL_HOT_PREFIXES,
    SystemConfig,
    streaming_config,
)
from .system import FaaSCluster

__all__ = [
    "DEFAULT_STREAMING_COMPACT_KEEP",
    "EPHEMERAL_HOT_PREFIXES",
    "SystemConfig",
    "FaaSCluster",
    "streaming_config",
]
