"""The assembled GPU-enabled FaaS system.

:class:`FaaSCluster` wires every component of Fig. 2 together: the
simulated GPU cluster, the etcd-like Datastore, the global Cache Manager
and Scheduler, and one GPU Manager per node.  The FaaS front-end (Gateway,
Watchdog, containers) plugs in on top via :mod:`repro.faas`; experiments
that only exercise scheduling submit :class:`InferenceRequest` objects
directly.
"""

from __future__ import annotations

from ..cluster.topology import Cluster, GPUTypeSpec, build_cluster
from ..core.cache_manager import CacheManager
from ..core.estimator import FinishTimeEstimator
from ..core.gpu_manager import GPUManager
from ..core.policies import make_scheduling_policy
from ..core.queues import LocalQueues
from ..core.replacement import make_policy
from ..core.request import InferenceRequest
from ..core.scheduler import Scheduler
from ..core.tenancy import TenancyController
from ..datastore.client import Datastore
from ..metrics.collector import MetricsCollector
from ..models.profiler import ProfileRegistry
from ..models.profiles import ModelInstance
from ..sim import Simulator
from .config import SystemConfig

__all__ = ["FaaSCluster"]


class FaaSCluster:
    """A complete, ready-to-run GPU-enabled FaaS system."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self.sim = Simulator()
        self.cluster: Cluster = build_cluster(self.sim, self.config.cluster)
        self.datastore = Datastore(
            self.sim,
            watch_delay=self.config.watch_delay_s,
            batched=self.config.datastore_batching,
        )

        # model profiles for every GPU type present (§VI heterogeneity)
        type_specs: list[GPUTypeSpec] = [spec for _, spec in self.config.cluster.nodes]
        self.registry = ProfileRegistry.from_table1(type_specs)

        self.metrics = MetricsCollector(self.sim)
        self._completion_listeners: list = []
        self.cache = CacheManager(
            self.sim,
            self.cluster.gpus,
            datastore=self.datastore.client(),
            policy_factory=lambda: make_policy(self.config.replacement),
        )
        self.cache.subscribe(self.metrics.on_cache_event)

        local_queues = LocalQueues()
        self.estimator = FinishTimeEstimator(self.sim, self.registry, local_queues)
        self.estimator.register_gpus(self.cluster.gpus)

        self.tenancy: TenancyController | None = None
        if self.config.quotas:
            self.tenancy = TenancyController(
                self.sim,
                quotas=self.config.quotas,
                total_memory_mb=sum(g.memory_mb for g in self.cluster.gpus),
                num_gpus=len(self.cluster.gpus),
                cache=self.cache,
            )
            self.cache.subscribe(self.tenancy.on_cache_event)

        self._managers: dict[str, GPUManager] = {}
        for node in self.cluster.nodes:
            self._managers[node.node_id] = GPUManager(
                self.sim,
                node,
                self.cache,
                self.registry,
                self.estimator,
                datastore=self.datastore.client(),
                on_idle=self._on_gpu_idle,
                on_complete=self._on_request_complete,
                # only tenancy observes dispatches; without it the managers
                # keep their no-op default instead of calling a wrapper
                # that checks for None once per dispatch
                on_dispatch=(
                    self._on_request_dispatch if self.tenancy is not None else None
                ),
            )

        policy = make_scheduling_policy(self.config.policy, o3_limit=self.config.o3_limit)
        self.scheduler = Scheduler(
            self.sim,
            self.cluster,
            policy,
            self.cache,
            self.estimator,
            self._managers,
            datastore=self.datastore.client(),
            tenancy=self.tenancy,
            pass_elision=self.config.pass_elision,
        )
        # rebind the managers' idle callback straight onto the scheduler:
        # the _on_gpu_idle wrapper only forwarded, and the hop runs once
        # per completion
        for manager in self._managers.values():
            manager.on_idle = self.scheduler.on_gpu_idle
        # commit construction-time writes (initial GPU statuses) so watchers
        # registered after build observe only post-build changes, exactly as
        # they would against the unbatched write path
        self.datastore.flush()

        if self.config.kv_autocompact_keep is not None:
            # sliding-horizon history compaction (etcd --auto-compaction
            # analogue): once more than 2×keep revisions of history have
            # accumulated, discard everything below revision - keep.  The
            # hook runs after the flush hook (registration order), so it
            # only ever sees committed state; hysteresis at 2×keep keeps
            # the O(keys) compaction walk off the per-event path.
            keep = self.config.kv_autocompact_keep
            kv = self.datastore.kv

            def _autocompact() -> None:
                if kv.revision - kv.compacted_revision > 2 * keep:
                    kv.compact(kv.revision - keep)

            self.sim.subscribe_post_event(_autocompact)

    # ------------------------------------------------------------------
    # Wiring callbacks
    # ------------------------------------------------------------------
    def _on_gpu_idle(self, gpu) -> None:
        self.scheduler.on_gpu_idle(gpu)

    def _on_request_dispatch(self, request: InferenceRequest) -> None:
        if self.tenancy is not None:
            self.tenancy.on_dispatch(request)

    def _on_request_complete(self, request: InferenceRequest) -> None:
        self.metrics.on_complete(request)
        if self.tenancy is not None:
            self.tenancy.on_request_complete(request)
        if self._completion_listeners:  # skip the defensive copy when empty
            for listener in list(self._completion_listeners):
                listener(request)

    def subscribe_completion(self, listener) -> None:
        """Register a callback invoked with every completed request."""
        self._completion_listeners.append(listener)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def register_model(self, instance: ModelInstance) -> None:
        """Make the runtime aware of a deployed model instance (tenancy)."""
        if self.tenancy is not None:
            self.tenancy.register_instance(instance)

    def submit(self, request: InferenceRequest) -> None:
        """Enqueue a request immediately (it must arrive now or earlier)."""
        if request.arrival_time > self.sim.now:
            raise ValueError(
                f"request arrives at {request.arrival_time} but now is {self.sim.now}; "
                "use submit_at()"
            )
        self.scheduler.submit(request)

    def submit_at(self, request: InferenceRequest) -> None:
        """Schedule the request's arrival at ``request.arrival_time``."""
        self.sim.schedule_at(request.arrival_time, self.scheduler.submit, request)

    def submit_workload(self, workload) -> None:
        """Bulk-inject a whole request stream at its arrival times.

        Equivalent to calling :meth:`submit_at` per request (same event
        ordering, bit-identical run) but the arrivals enter the simulator
        through :meth:`~repro.sim.Simulator.schedule_many`: one heap build
        over the presorted arrival column instead of one sift-up per
        request.  Accepts a :class:`~repro.traces.Workload` (materializing
        its columns once) or any iterable of requests.
        """
        requests = workload.requests if hasattr(workload, "requests") else list(workload)
        self.sim.schedule_many(
            [r.arrival_time for r in requests],
            self.scheduler.submit,
            ((r,) for r in requests),
        )

    def run(self, until: float | None = None) -> None:
        """Advance the simulation (drains all work when ``until`` is None)."""
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Failure injection / recovery
    # ------------------------------------------------------------------
    def fail_gpu(self, gpu_id: str) -> None:
        """Fail a GPU: its memory (cached models) is lost, the in-flight
        request and everything in its local queue return to the global
        queue and are retried elsewhere."""
        gpu = self.cluster.gpu(gpu_id)
        manager = self._managers[gpu.node_id]
        inflight = manager.abort(gpu)
        stranded = self.scheduler.drain_local(gpu_id)
        if inflight is not None:
            if self.tenancy is not None and inflight.cache_hit is False:
                self.tenancy.on_load_aborted(inflight.model_id)
            stranded.insert(0, inflight)
        for request in stranded:
            self.scheduler.resubmit(request)
        # commit the failure's writes (offline status, withdrawn LRU lists /
        # locations, resubmits) as one action when called outside the sim;
        # scheduled failures commit at the post-event boundary instead
        if not self.sim.is_running:
            self.datastore.flush()

    def recover_gpu(self, gpu_id: str) -> None:
        """Bring a failed GPU back online (empty) and resume scheduling."""
        gpu = self.cluster.gpu(gpu_id)
        self._managers[gpu.node_id].recover(gpu)
        if not self.sim.is_running:
            self.datastore.flush()

    @property
    def completed(self) -> list[InferenceRequest]:
        return self.metrics.completed

    def gpu_managers(self) -> dict[str, GPUManager]:
        return dict(self._managers)
