"""The assembled GPU-enabled FaaS system.

:class:`FaaSCluster` wires every component of Fig. 2 together: the
simulated GPU cluster, the etcd-like Datastore, the global Cache Manager
and Scheduler, and one GPU Manager per node.  The FaaS front-end (Gateway,
Watchdog, containers) plugs in on top via :mod:`repro.faas`; experiments
that only exercise scheduling submit :class:`InferenceRequest` objects
directly.
"""

from __future__ import annotations

from ..chaos import ChaosInjector, HealthWatchdog, build_fault_plan
from ..cluster.topology import Cluster, GPUTypeSpec, build_cluster
from ..core.cache_manager import CacheManager
from ..core.estimator import FinishTimeEstimator
from ..core.gpu_manager import GPUManager
from ..core.policies import make_scheduling_policy
from ..core.queues import LocalQueues
from ..core.replacement import make_policy
from ..core.request import InferenceRequest
from ..core.scheduler import Scheduler
from ..core.tenancy import TenancyController
from ..datastore.client import Datastore
from ..metrics.collector import MetricsCollector
from ..models.profiler import ProfileRegistry
from ..models.profiles import ModelInstance
from ..obs.explain import ExplainLog
from ..obs.tracer import FlightRecorder
from ..sim import Simulator
from .config import SystemConfig

__all__ = ["FaaSCluster"]


class FaaSCluster:
    """A complete, ready-to-run GPU-enabled FaaS system."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self.sim = Simulator()
        self.cluster: Cluster = build_cluster(self.sim, self.config.cluster)
        self.datastore = Datastore(
            self.sim,
            watch_delay=self.config.watch_delay_s,
            batched=self.config.datastore_batching,
            ephemeral_prefixes=self.config.ephemeral_prefixes,
        )

        # model profiles for every GPU type present (§VI heterogeneity)
        type_specs: list[GPUTypeSpec] = [spec for _, spec in self.config.cluster.nodes]
        self.registry = ProfileRegistry.from_table1(type_specs)

        self.metrics = MetricsCollector(
            self.sim,
            streaming=self.config.metrics_streaming,
            exact_cap=self.config.metrics_exact_cap,
            spill_to=self.config.metrics_spill_path,
        )
        # ---- observability: flight recorder + explain log -------------
        # "Off" is the attribute staying None, not a NullTracer object:
        # every hook site in the hot path is one attribute load and one
        # identity test, nothing else.
        self.tracer: FlightRecorder | None = None
        if self.config.tracer == "flight":
            self.tracer = FlightRecorder(
                self.sim,
                capacity=self.config.tracer_capacity,
                span_stride=self.config.trace_span_stride,
                spill_path=self.config.trace_spill_path,
                spill_keep=self.config.trace_spill_keep,
            )
            self.metrics.tracer = self.tracer
            self.datastore.pending._tracer = self.tracer
        self._completion_listeners: list = []
        self.cache = CacheManager(
            self.sim,
            self.cluster.gpus,
            datastore=self.datastore.client(),
            policy_factory=lambda: make_policy(self.config.replacement),
        )
        self.cache.subscribe(self.metrics.on_cache_event)
        if self.tracer is not None:
            self.cache.tracer = self.tracer

        local_queues = LocalQueues()
        self.estimator = FinishTimeEstimator(self.sim, self.registry, local_queues)
        self.estimator.register_gpus(self.cluster.gpus)

        self.tenancy: TenancyController | None = None
        if self.config.quotas:
            self.tenancy = TenancyController(
                self.sim,
                quotas=self.config.quotas,
                total_memory_mb=sum(g.memory_mb for g in self.cluster.gpus),
                num_gpus=len(self.cluster.gpus),
                cache=self.cache,
            )
            self.cache.subscribe(self.tenancy.on_cache_event)

        self._managers: dict[str, GPUManager] = {}
        for node in self.cluster.nodes:
            self._managers[node.node_id] = GPUManager(
                self.sim,
                node,
                self.cache,
                self.registry,
                self.estimator,
                datastore=self.datastore.client(),
                latency_keep=self.config.latency_log_keep,
                on_idle=self._on_gpu_idle,
                on_complete=self._on_request_complete,
                # only tenancy observes dispatches; without it the managers
                # keep their no-op default instead of calling a wrapper
                # that checks for None once per dispatch
                on_dispatch=(
                    self._on_request_dispatch if self.tenancy is not None else None
                ),
                on_drained=self._on_gpu_drained,
            )

        policy = make_scheduling_policy(self.config.policy, o3_limit=self.config.o3_limit)
        self.scheduler = Scheduler(
            self.sim,
            self.cluster,
            policy,
            self.cache,
            self.estimator,
            self._managers,
            datastore=self.datastore.client(),
            tenancy=self.tenancy,
            pass_elision=self.config.pass_elision,
            deadline_s=self.config.deadline_s,
        )
        self.scheduler.on_lost = self.metrics.on_lost
        if self.tracer is not None:
            self.scheduler._tracer = self.tracer
        #: structured decision causes (explain mode); None unless
        #: ``SystemConfig(trace_decisions=True)``
        self.explain: ExplainLog | None = None
        if self.config.trace_decisions:
            self.explain = ExplainLog()
            self.scheduler.explain = self.explain
        if self.tracer is not None or self.explain is not None:
            # skip the per-call observed-engine dispatch: every
            # _run_policy call on this instance goes straight to the
            # instrumented engine (which re-checks re-entrancy itself)
            self.scheduler._run_policy = self.scheduler._run_policy_observed
        # rebind the managers' idle callback straight onto the scheduler:
        # the _on_gpu_idle wrapper only forwarded, and the hop runs once
        # per completion
        for manager in self._managers.values():
            manager.on_idle = self.scheduler.on_gpu_idle

        # ---- chaos: materialize and arm the fault schedule ------------
        # Armed during construction, before any workload is submitted, so
        # the fault events hold a fixed, plan-determined position in the
        # simulator's tie-break order — the root of replay determinism.
        # With no faults (the default) nothing is built: no watchdog, no
        # heartbeat events, byte-identical to the pre-chaos runtime.
        plan = self.config.fault_plan
        if plan is None and self.config.fault_profile != "none":
            plan = build_fault_plan(
                self.config.fault_profile,
                seed=self.config.seed,
                gpus=len(self.cluster.gpus),
            )
        self.fault_plan = plan if plan is not None and len(plan) else None
        self.health: HealthWatchdog | None = None
        self.chaos: ChaosInjector | None = None
        if self.fault_plan is not None:
            self.health = HealthWatchdog(
                self,
                heartbeat_s=self.config.health_heartbeat_s,
                ttl_s=self.config.health_ttl_s,
                # heartbeats retire once every fault has played out (plus
                # one TTL of slack for a trailing expiry to self-heal), so
                # the replay still drains to a fixed event horizon
                horizon_s=self.fault_plan.end_s
                + self.config.health_ttl_s
                + 2 * self.config.health_heartbeat_s,
            )
            self.health.start()
            self.chaos = ChaosInjector(self, self.fault_plan)
            self.chaos.arm()

        # commit construction-time writes (initial GPU statuses) so watchers
        # registered after build observe only post-build changes, exactly as
        # they would against the unbatched write path
        self.datastore.flush()

        if self.config.kv_autocompact_keep is not None:
            # sliding-horizon history compaction (etcd --auto-compaction
            # analogue): once more than 2×keep revisions of history have
            # accumulated, discard everything below revision - keep.  The
            # hook runs after the flush hook (registration order), so it
            # only ever sees committed state; hysteresis at 2×keep keeps
            # the O(keys) compaction walk off the per-event path.
            keep = self.config.kv_autocompact_keep
            kv = self.datastore.kv

            def _autocompact() -> None:
                if kv.revision - kv.compacted_revision > 2 * keep:
                    kv.compact(kv.revision - keep)

            self.sim.subscribe_post_event(_autocompact)

    # ------------------------------------------------------------------
    # Wiring callbacks
    # ------------------------------------------------------------------
    def _on_gpu_idle(self, gpu) -> None:
        self.scheduler.on_gpu_idle(gpu)

    def _on_request_dispatch(self, request: InferenceRequest) -> None:
        if self.tenancy is not None:
            self.tenancy.on_dispatch(request)

    def _on_request_complete(self, request: InferenceRequest) -> None:
        self.metrics.on_complete(request)
        tracer = self.tracer
        if tracer is not None:
            if tracer._spill is None:
                # write the request ring in place (same trade as the
                # scheduler-pass and commit sites: the tracer here is
                # always the runtime's FlightRecorder, and one closure
                # call per completion is measurable at replay rates);
                # the ring holds a borrowed reference — the request's
                # stamps are final once complete, and fields are read
                # at snapshot time.  The spill-configured path keeps
                # the protocol hook, which also builds the JSONL record
                state = tracer._r_state
                i = state[0]
                tracer._r_objs[i] = request
                state[1] += 1
                i += 1
                state[0] = 0 if i == tracer.capacity else i
            else:
                tracer.request_complete(request)
        if self.tenancy is not None:
            self.tenancy.on_request_complete(request)
        if self._completion_listeners:  # skip the defensive copy when empty
            for listener in list(self._completion_listeners):
                listener(request)

    def subscribe_completion(self, listener) -> None:
        """Register a callback invoked with every completed request."""
        self._completion_listeners.append(listener)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def register_model(self, instance: ModelInstance) -> None:
        """Make the runtime aware of a deployed model instance (tenancy)."""
        if self.tenancy is not None:
            self.tenancy.register_instance(instance)

    def submit(self, request: InferenceRequest) -> None:
        """Enqueue a request immediately (it must arrive now or earlier)."""
        if request.arrival_time > self.sim.now:
            raise ValueError(
                f"request arrives at {request.arrival_time} but now is {self.sim.now}; "
                "use submit_at()"
            )
        self.scheduler.submit(request)

    def submit_at(self, request: InferenceRequest) -> None:
        """Schedule the request's arrival at ``request.arrival_time``."""
        self.sim.schedule_at(request.arrival_time, self.scheduler.submit, request)

    def submit_workload(self, workload) -> None:
        """Bulk-inject a whole request stream at its arrival times.

        Equivalent to calling :meth:`submit_at` per request (same event
        ordering, bit-identical run) but the arrivals enter the simulator
        through :meth:`~repro.sim.Simulator.schedule_many`: one heap build
        over the presorted arrival column instead of one sift-up per
        request.  Accepts a :class:`~repro.traces.Workload` (materializing
        its columns once) or any iterable of requests.
        """
        requests = workload.requests if hasattr(workload, "requests") else list(workload)
        self.sim.schedule_many(
            [r.arrival_time for r in requests],
            self.scheduler.submit,
            ((r,) for r in requests),
        )

    def submit_workload_streaming(
        self,
        workload,
        *,
        minutes_per_chunk: int = 8,
        low_water: int = 64,
    ) -> None:
        """Feed a :class:`~repro.traces.StreamingWorkload` chunk by chunk.

        Injects one column chunk of arrivals through ``schedule_many``,
        then arms a refill: when the arrival ``low_water`` requests from
        the chunk's tail fires, the *next* chunk is drawn (its RNG state
        picks up exactly where the previous chunk left off) and injected
        — so the event heap, slab, and live request objects stay bounded
        by one chunk plus in-flight work instead of the whole trace.

        The refill event carries ``priority=-1``: it beats the same-time
        arrival in the tie-break, so the heap never runs dry mid-stream.
        Scheduling is deterministic — chunk boundaries and refill times
        are pure functions of the workload spec.
        """
        if low_water < 1:
            raise ValueError("low_water must be >= 1")
        chunk_iter = workload.chunks(minutes_per_chunk=minutes_per_chunk)

        def inject_next() -> None:
            for chunk in chunk_iter:
                n = len(chunk)
                if not n:  # idle minutes: nothing to schedule, keep pulling
                    continue
                requests = workload.materialize(chunk)
                times = chunk.arrival_times.tolist()
                self.sim.schedule_many(
                    times, self.scheduler.submit, ((r,) for r in requests)
                )
                refill_at = times[max(0, n - low_water)]
                self.sim.schedule_at(refill_at, inject_next, priority=-1)
                return

        inject_next()

    def run(self, until: float | None = None) -> None:
        """Advance the simulation (drains all work when ``until`` is None)."""
        self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Failure injection / recovery
    # ------------------------------------------------------------------
    def fail_gpu(self, gpu_id: str) -> None:
        """Fail a GPU: its memory (cached models) is lost, the in-flight
        request and everything in its local queue return to the global
        queue and are retried elsewhere."""
        gpu = self.cluster.gpu(gpu_id)
        manager = self._managers[gpu.node_id]
        inflight = manager.abort(gpu)
        stranded = self.scheduler.drain_local(gpu_id)
        if inflight is not None:
            if self.tenancy is not None and inflight.cache_hit is False:
                self.tenancy.on_load_aborted(inflight.model_id)
            stranded.insert(0, inflight)
        for request in stranded:
            self._requeue(request)
        # commit the failure's writes (offline status, withdrawn LRU lists /
        # locations, resubmits) as one action when called outside the sim;
        # scheduled failures commit at the post-event boundary instead
        if not self.sim.is_running:
            self.datastore.flush()

    def drain_gpu(self, gpu_id: str) -> None:
        """Gracefully retire a GPU: running work finishes, queued work
        reschedules, cache locations are invalidated atomically.

        The drain protocol, in order: (1) the GPU's local queue is emptied
        and every request re-queued through the retry budget; (2) the
        manager marks the GPU draining — an in-flight request finishes
        normally before the GPU retires, an idle GPU retires immediately;
        (3) at retirement every cached model is withdrawn in the same
        write batch as the ``"offline"`` status flip; (4) anything bound
        to the local queue during the drain window is re-queued via the
        manager's ``on_drained`` callback.  Unlike :meth:`fail_gpu`, no
        work is ever aborted.
        """
        gpu = self.cluster.gpu(gpu_id)
        stranded = self.scheduler.drain_local(gpu_id)
        self._managers[gpu.node_id].drain(gpu)
        for request in stranded:
            self._requeue(request)
        if not self.sim.is_running:
            self.datastore.flush()

    def _on_gpu_drained(self, gpu) -> None:
        """Drain completed mid-run: re-queue anything the policies bound to
        the (then busy, now offline) GPU's local queue during the window."""
        for request in self.scheduler.drain_local(gpu.gpu_id):
            self._requeue(request)

    def _requeue(self, request: InferenceRequest) -> None:
        """Route displaced work back to the global queue, applying the
        configured retry budget and backoff.

        Defaults (``max_retries=None``, ``retry_backoff_s=0``) reproduce
        the historical behaviour exactly: unlimited, immediate resubmits.
        """
        cfg = self.config
        if cfg.max_retries is not None and request.retries >= cfg.max_retries:
            self.scheduler.give_up(request, "retries_exhausted")
            return
        if cfg.retry_backoff_s > 0.0:
            # exponential: each absorbed retry doubles the pause before
            # the request competes for GPUs again
            delay = cfg.retry_backoff_s * (2.0 ** request.retries)
            self.sim.schedule(delay, self.scheduler.resubmit, request)
            return
        self.scheduler.resubmit(request)

    def recover_gpu(self, gpu_id: str) -> None:
        """Bring a failed GPU back online (empty) and resume scheduling."""
        gpu = self.cluster.gpu(gpu_id)
        self._managers[gpu.node_id].recover(gpu)
        if not self.sim.is_running:
            self.datastore.flush()

    @property
    def completed(self) -> list[InferenceRequest]:
        return self.metrics.completed

    def gpu_managers(self) -> dict[str, GPUManager]:
        return dict(self._managers)
